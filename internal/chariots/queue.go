package chariots

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/vclock"
)

// Token is the causality token circulated by the queues (§6.2): the
// current maximum applied TOId of each datacenter, the next LId to assign,
// and (optionally) the deferred records whose dependencies are not yet
// satisfied. Exactly one token exists per datacenter; whichever queue holds
// it appends everything appendable, then forwards it around the ring.
type Token struct {
	Applied  vclock.Vector
	NextLId  uint64
	Deferred []*core.Record
}

// NewToken returns the initial token for a datacenter of n.
func NewToken(n int) *Token {
	return &Token{Applied: vclock.NewVector(n), NextLId: 1}
}

// Queue is one machine of the LId-assignment stage (§6.2). It buffers
// records arriving from the filters in its inbox; when it holds the token
// it drains the inbox, applies every record whose total order and causal
// dependencies are satisfied (assigning TOIds to fresh local records and
// LIds to everything applied), forwards the applied records to the owning
// FLStore maintainers, and passes the token on.
type Queue struct {
	StageMachine
	index       int
	state       *dcState
	in          chan []*core.Record
	buffered    chan []*core.Record
	tokenIn     chan *Token
	placement   flstore.Placement
	maintainers []flstore.MaintainerAPI

	mu   sync.Mutex
	next chan<- *Token // next queue's tokenIn; mutable for ring growth

	// carryDeferred selects whether unsatisfied records travel with the
	// token (lower latency, more token I/O) or stay at this queue (§6.2
	// discusses the trade-off; the ablation bench measures it).
	carryDeferred bool
	parked        []*core.Record

	// idleWait bounds how long the queue holds an idle token waiting
	// for input before passing it on.
	idleWait time.Duration
	maxDrain int
	// stopC aborts feed pushes during shutdown.
	stopC <-chan struct{}

	// Applied counts records this queue appended to the log.
	Applied metrics.Counter
}

// NewQueue builds a queue machine.
func NewQueue(name string, limiter *ratelimit.Limiter, index int, state *dcState, in chan []*core.Record, placement flstore.Placement, maintainers []flstore.MaintainerAPI, carryDeferred bool, idleWait time.Duration) *Queue {
	if idleWait <= 0 {
		idleWait = 200 * time.Microsecond
	}
	return &Queue{
		StageMachine:  StageMachine{Name: name, Limiter: limiter},
		index:         index,
		state:         state,
		in:            in,
		buffered:      make(chan []*core.Record, cap(in)+1),
		tokenIn:       make(chan *Token, 1),
		placement:     placement,
		maintainers:   maintainers,
		carryDeferred: carryDeferred,
		idleWait:      idleWait,
		// Keep per-cycle batches below the capacity limiters' burst so
		// the queue→maintainer→store charges overlap in time the way
		// independent machines do, instead of serializing one
		// token-bucket sleep after another within a single cycle.
		maxDrain: 1024,
	}
}

// In returns the queue's inbox.
func (q *Queue) In() chan []*core.Record { return q.in }

// TokenIn returns the channel on which this queue receives the token.
func (q *Queue) TokenIn() chan *Token { return q.tokenIn }

// SetNext rewires where this queue forwards the token (ring membership).
func (q *Queue) SetNext(next chan<- *Token) {
	q.mu.Lock()
	q.next = next
	q.mu.Unlock()
}

func (q *Queue) nextChan() chan<- *Token {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.next
}

// run is the queue machine's execution: three concurrent activities that
// mirror the real machine. The *pump* receives records from the filters —
// this is where the machine's capacity limiter is charged, because
// receiving/buffering is the bulk of a queue's per-record work and happens
// concurrently across queues. The *token section* (this loop) does only
// the serialized part: checking applicability and assigning TOIds/LIds,
// which is counter arithmetic — keeping token-holding time minimal is what
// lets the queue stage scale with machines. The per-maintainer
// *forwarders* push applied records into FLStore, charging the maintainer
// and store machines without holding the token.
func (q *Queue) run(stop <-chan struct{}) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.pump(stop, done)
	}()
	outs := make([]chan []*core.Record, len(q.maintainers))
	for i := range outs {
		outs[i] = make(chan []*core.Record, 8)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q.forward(stop, i, outs[i])
		}(i)
	}
	defer func() {
		close(done)
		wg.Wait()
	}()

	for {
		var tok *Token
		select {
		case <-stop:
			return
		case tok = <-q.tokenIn:
		}

		drained := q.drainBuffered()
		if len(drained) == 0 && len(tok.Deferred) == 0 && len(q.parked) == 0 {
			// Idle: wait briefly for input rather than spinning the
			// token around an empty ring.
			timer := time.NewTimer(q.idleWait)
			select {
			case <-stop:
				timer.Stop()
				return
			case recs := <-q.buffered:
				drained = recs
				timer.Stop()
			case <-timer.C:
			}
		}

		work := drained
		work = append(work, tok.Deferred...)
		work = append(work, q.parked...)
		tok.Deferred = nil
		q.parked = nil

		applied, leftover := q.apply(tok, work, outs, stop)
		if applied > 0 {
			q.Applied.Add(uint64(applied))
		}
		if q.carryDeferred {
			tok.Deferred = leftover
		} else {
			q.parked = leftover
		}

		select {
		case <-stop:
			return
		case q.nextChan() <- tok:
		}
	}
}

// pump moves records from the filter-facing inbox into the token-drainable
// buffer, charging the queue machine's capacity — concurrent with other
// queues and with this queue's own token work.
func (q *Queue) pump(stop, done <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-done:
			return
		case recs := <-q.in:
			q.work(len(recs))
			select {
			case q.buffered <- recs:
			case <-stop:
				return
			case <-done:
				return
			}
		}
	}
}

// forward persists applied batches to one maintainer, off the token path.
func (q *Queue) forward(stop <-chan struct{}, maintainer int, in <-chan []*core.Record) {
	for {
		select {
		case <-stop:
			return
		case batch, ok := <-in:
			if !ok {
				return
			}
			if err := q.maintainers[maintainer].AppendAssigned(batch); err != nil {
				// A maintainer refusing an assigned record is a
				// deployment bug (wrong placement) or duplicate;
				// the record was already ordered, so fail loudly.
				panic("chariots: maintainer rejected assigned records: " + err.Error())
			}
		}
	}
}

// drainBuffered collects pumped records without blocking, bounded by
// maxDrain records per token cycle.
func (q *Queue) drainBuffered() []*core.Record {
	// Batches arriving on the channel are ownership transfers, so the
	// common single-batch cycle adopts the first slice outright instead
	// of copying into a fresh one.
	var out []*core.Record
	for len(out) < q.maxDrain {
		select {
		case recs := <-q.buffered:
			if out == nil {
				out = recs
			} else {
				out = append(out, recs...)
			}
		default:
			return out
		}
	}
	return out
}

// apply appends every applicable record (fixed-point over the work list),
// returns how many were applied and the records that must wait.
func (q *Queue) apply(tok *Token, work []*core.Record, outs []chan []*core.Record, stop <-chan struct{}) (int, []*core.Record) {
	if len(work) == 0 {
		return 0, nil
	}
	var appliedRecs []*core.Record
	pending := work
	for {
		progress := false
		var still []*core.Record
		for _, rec := range pending {
			if q.applicable(tok, rec) {
				q.applyOne(tok, rec)
				appliedRecs = append(appliedRecs, rec)
				progress = true
			} else if rec.TOId != 0 && rec.TOId <= tok.Applied.Get(rec.Host) {
				// Duplicate that slipped past a filter (e.g.
				// after a filter reassignment): drop for
				// exactly-once.
				continue
			} else {
				still = append(still, rec)
			}
		}
		pending = still
		if !progress {
			break
		}
	}
	if len(appliedRecs) > 0 {
		q.persist(appliedRecs, outs, stop)
	}
	return len(appliedRecs), pending
}

// applicable: fresh local records are always appendable (their dependencies
// are a subset of what this datacenter had applied when the client
// submitted them); external records need their host total order and their
// dependency vector satisfied.
func (q *Queue) applicable(tok *Token, rec *core.Record) bool {
	if rec.Host == q.state.self && rec.TOId == 0 {
		return true
	}
	if rec.TOId != tok.Applied.Get(rec.Host)+1 {
		return false
	}
	return tok.Applied.CoversDeps(rec.Deps)
}

// applyOne numbers and orders one record under the token.
func (q *Queue) applyOne(tok *Token, rec *core.Record) {
	if rec.Host == q.state.self && rec.TOId == 0 {
		rec.TOId = tok.Applied.Get(q.state.self) + 1
	}
	rec.LId = tok.NextLId
	tok.NextLId++
	tok.Applied.Set(rec.Host, rec.TOId)
}

// persist groups applied records per owning maintainer (the queues know
// the deterministic LId layout) and hands them to the forwarders, then
// updates the Awareness Table, releases acks, and feeds local records to
// the senders. Maintainers buffer slot gaps internally, so out-of-order
// arrival across queues' forwarders is safe.
func (q *Queue) persist(recs []*core.Record, outs []chan []*core.Record, stop <-chan struct{}) {
	// The pipe.queue span covers filter→queue transit, token wait, and LId
	// assignment. Hop before the forwarders and the sender feed see the
	// records — after this point rec.Trace is read-only.
	hopRecords(recs, "pipe.queue")
	groups := make(map[int][]*core.Record)
	for _, rec := range recs {
		owner := q.placement.Owner(rec.LId)
		groups[owner] = append(groups[owner], rec)
	}
	for owner, group := range groups {
		select {
		case outs[owner] <- group:
		case <-stop:
			return
		}
	}
	ring := q.state.applyTimes.Load()
	applied := 0
	for _, rec := range recs {
		q.state.atable.RecordApplied(rec.Host, rec.TOId)
		if rec.Host == q.state.self {
			applied++
			if ring != nil {
				ring.record(rec.TOId, time.Now().UnixNano())
			}
			q.state.fireAck(rec)
			if q.state.feedEnabled {
				if q.stopC == nil {
					q.state.localFeed <- rec
				} else {
					select {
					case q.state.localFeed <- rec:
					case <-q.stopC:
					}
				}
			}
		}
	}
	// Return pipeline credits for the local records now applied. Only local
	// records acquire credits (Inject charges them; receivers do not), and
	// every injected record reaches persist exactly once: filters pass
	// fresh local records through unconditionally and the queue's duplicate
	// drop only affects remote records — so the gate cannot leak.
	if applied > 0 && q.state.credits != nil {
		q.state.credits.release(applied)
	}
}
