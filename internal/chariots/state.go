package chariots

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/vclock"
)

// AppendAck reports the ids a locally appended record received once the
// pipeline applied it to the shared log (§3: "The assigned TOId and LId
// will be sent back to the Application client").
type AppendAck struct {
	TOId uint64
	LId  uint64
}

// dcState is the per-datacenter shared state the pipeline stages
// coordinate through: the Awareness Table, the feed of freshly applied
// local records consumed by senders, and the pending append
// acknowledgements owed to application clients.
type dcState struct {
	self   core.DCID
	n      int
	atable *vclock.ATable

	// localFeed carries applied local records (LIds assigned) from the
	// queues to the senders. feedEnabled is false in single-datacenter
	// deployments (no senders), where pushing to the feed would fill it
	// and stall the queues.
	localFeed   chan *core.Record
	feedEnabled bool

	// acks maps a locally submitted *core.Record to the channel waiting
	// for its AppendAck. Pointer identity is stable because intra-DC
	// stages pass records in process; external copies are cloned at the
	// receiver and never have acks.
	acks sync.Map

	// applyTimes, when set (EnableMetrics), records when each local TOId
	// was applied, backing the wall-time replication-lag gauge.
	applyTimes atomic.Pointer[applyTimeRing]

	// credits bounds records between local ingress and apply (credit.go).
	// Queues reach it through their state pointer to return credits at
	// persist time.
	credits *creditGate
}

func newDCState(self core.DCID, n int, feedDepth int) *dcState {
	if feedDepth < 1 {
		feedDepth = 1 << 14
	}
	return &dcState{
		self:      self,
		n:         n,
		atable:    vclock.NewATable(self, n),
		localFeed: make(chan *core.Record, feedDepth),
	}
}

// registerAck arranges for ch to receive the record's ids once applied.
func (s *dcState) registerAck(rec *core.Record, ch chan<- AppendAck) {
	s.acks.Store(rec, ch)
}

// unregisterAck abandons a registration whose record was never admitted
// (ingress shed), so the acks map does not accumulate dead entries.
func (s *dcState) unregisterAck(rec *core.Record) {
	s.acks.Delete(rec)
}

// fireAck delivers the ack for rec, if one is registered.
func (s *dcState) fireAck(rec *core.Record) {
	v, ok := s.acks.LoadAndDelete(rec)
	if !ok {
		return
	}
	ch := v.(chan<- AppendAck)
	ch <- AppendAck{TOId: rec.TOId, LId: rec.LId}
}
