// Package chariots implements the multi-datacenter replicated shared log
// of §6: a per-datacenter pipeline (receivers → batchers → filters →
// queues → FLStore maintainers → senders) that maintains one causally
// ordered log replica per datacenter.
//
// This file contains the *abstract solution* of §6.1: the whole datacenter
// modelled as a single totally ordered thread of control manipulating a
// log, an Awareness Table, and a priority queue of causally premature
// records. The distributed pipeline (the rest of the package) must be
// behaviourally equivalent to this reference; property tests enforce that.
package chariots

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/vclock"
)

// AbstractDC is the single-threaded reference datacenter of §6.1. It is
// not safe for concurrent use; that is the point — it defines the
// sequential semantics the distributed implementation scales out.
type AbstractDC struct {
	self   core.DCID
	n      int
	log    []*core.Record
	atable *vclock.ATable
	// pending holds received records whose causal dependencies are not
	// yet satisfied, ordered by (host-total-order) readiness.
	pending recordHeap
	// nextTOId is the next total-order id for locally appended records.
	nextTOId uint64
}

// NewAbstractDC returns an empty reference datacenter self of n.
func NewAbstractDC(self core.DCID, n int) *AbstractDC {
	return &AbstractDC{
		self:     self,
		n:        n,
		atable:   vclock.NewATable(self, n),
		nextTOId: 1,
	}
}

// Self returns the datacenter id.
func (dc *AbstractDC) Self() core.DCID { return dc.self }

// Append performs the §6.1 Append event: construct the record with host
// id, TOId, LId and causality information, update T[self][self], and add it
// to the log. The record's dependency vector is the datacenter's current
// knowledge, which encodes every happened-before edge (anything readable
// here happened before this append).
func (dc *AbstractDC) Append(body []byte, tags []core.Tag) *core.Record {
	rec := &core.Record{
		Host: dc.self,
		TOId: dc.nextTOId,
		Deps: dc.atable.SelfVector().Deps(),
		Tags: tags,
		Body: body,
	}
	dc.nextTOId++
	dc.applyToLog(rec)
	return rec
}

// applyToLog assigns the next LId and appends.
func (dc *AbstractDC) applyToLog(rec *core.Record) {
	rec.LId = uint64(len(dc.log)) + 1
	dc.log = append(dc.log, rec)
	dc.atable.RecordApplied(rec.Host, rec.TOId)
}

// Read performs the §6.1 Read event: the record at the given LId.
func (dc *AbstractDC) Read(lid uint64) (*core.Record, error) {
	if lid == 0 || lid > uint64(len(dc.log)) {
		return nil, core.ErrNoSuchRecord
	}
	return dc.log[lid-1], nil
}

// Len returns the number of records in the log.
func (dc *AbstractDC) Len() int { return len(dc.log) }

// Log returns the log contents (shared slice; callers must not mutate).
func (dc *AbstractDC) Log() []*core.Record { return dc.log }

// ATable exposes the awareness table.
func (dc *AbstractDC) ATable() *vclock.ATable { return dc.atable }

// Snapshot is a §6.1 Propagate payload: records plus the sender's table.
type Snapshot struct {
	From    core.DCID
	Records []*core.Record
	ATable  []vclock.Vector
	// Owned marks Records as private copies the receiver may adopt and
	// mutate (clear LIds, push into the pipeline) without cloning. RPC
	// decode sets it — decoded records are arena-backed and belong to the
	// snapshot — as do the resync paths, which clone before shipping. An
	// in-process Sender leaves it false: its Records alias the local log.
	Owned bool
}

// Propagate performs the §6.1 Propagate event toward datacenter j: a
// subset of the log — records not already known by j per T[j][host(r)] —
// plus a snapshot of the awareness table. Records are sent as copies with
// the LId cleared, since LIds are per-datacenter.
func (dc *AbstractDC) Propagate(j core.DCID) Snapshot {
	snap := Snapshot{From: dc.self, ATable: dc.atable.Snapshot()}
	for _, rec := range dc.log {
		if !dc.atable.KnownBy(j, rec.Host, rec.TOId) {
			c := rec.Clone()
			c.LId = 0
			snap.Records = append(snap.Records, c)
		}
	}
	return snap
}

// Receive performs the §6.1 Reception event: records never seen before are
// incorporated into the log if their causal dependencies are satisfied,
// otherwise they wait in the priority queue; the queue is re-examined after
// every incorporation; the awareness table absorbs the sender's snapshot.
func (dc *AbstractDC) Receive(snap Snapshot) error {
	if snap.From == dc.self {
		return errors.New("chariots: received own snapshot")
	}
	for _, rec := range snap.Records {
		if rec.Host == dc.self {
			// A copy of our own record bounced back; our log
			// already has it by definition of TOId assignment.
			continue
		}
		if dc.atable.Get(dc.self, rec.Host) >= rec.TOId {
			continue // duplicate: exactly-once
		}
		heap.Push(&dc.pending, rec.Clone())
	}
	dc.drainPending()
	dc.atable.MergeSnapshot(snap.ATable)
	return nil
}

// applicable reports whether rec can enter the log now: it is the next
// record of its host's total order and its dependency vector is covered.
func (dc *AbstractDC) applicable(rec *core.Record) bool {
	self := dc.atable.SelfVector()
	if rec.TOId != self.Get(rec.Host)+1 {
		return false
	}
	return self.CoversDeps(rec.Deps)
}

// drainPending repeatedly applies ready records from the priority queue.
func (dc *AbstractDC) drainPending() {
	for {
		progress := false
		// The heap orders by (TOId) which approximates readiness;
		// after each apply, re-examine from the top.
		var stash []*core.Record
		for dc.pending.Len() > 0 {
			rec := heap.Pop(&dc.pending).(*core.Record)
			if dc.atable.Get(dc.self, rec.Host) >= rec.TOId {
				continue // became duplicate while queued
			}
			if dc.applicable(rec) {
				rec.LId = 0
				dc.applyToLog(rec)
				progress = true
			} else {
				stash = append(stash, rec)
			}
		}
		for _, rec := range stash {
			heap.Push(&dc.pending, rec)
		}
		if !progress {
			return
		}
	}
}

// PendingLen returns how many received records await their dependencies.
func (dc *AbstractDC) PendingLen() int { return dc.pending.Len() }

// GCSafePrefix returns the longest log prefix (as a record count) in which
// every record is known by all datacenters, i.e. safe to garbage collect
// under the §6.1 rule ∀j: T[j][host(r)] ≥ TOId(r).
func (dc *AbstractDC) GCSafePrefix() int {
	for i, rec := range dc.log {
		if !dc.atable.GCSafe(rec.Host, rec.TOId) {
			return i
		}
	}
	return len(dc.log)
}

// CheckCausalInvariant verifies the log is a causally consistent sequence:
// per-host TOIds appear in order, and every record's dependencies are
// satisfied by the records before it. It returns the first violation.
func CheckCausalInvariant(log []*core.Record) error {
	maxDC := core.DCID(0)
	for _, rec := range log {
		if rec.Host > maxDC {
			maxDC = rec.Host
		}
		for _, d := range rec.Deps {
			if d.DC > maxDC {
				maxDC = d.DC
			}
		}
	}
	seen := vclock.NewVector(int(maxDC) + 1)
	for i, rec := range log {
		if rec.TOId != seen.Get(rec.Host)+1 {
			return fmt.Errorf("position %d: %v breaks %s's total order (expected TOId %d)",
				i+1, rec.ID(), rec.Host, seen.Get(rec.Host)+1)
		}
		if !seen.CoversDeps(rec.Deps) {
			return fmt.Errorf("position %d: %v has unsatisfied dependencies %v (seen %v)",
				i+1, rec.ID(), rec.Deps, seen)
		}
		seen.Set(rec.Host, rec.TOId)
	}
	return nil
}

// recordHeap orders pending records by TOId (then host) so lower
// total-order ids — the ones that unblock others — surface first.
type recordHeap []*core.Record

func (h recordHeap) Len() int { return len(h) }
func (h recordHeap) Less(i, j int) bool {
	if h[i].TOId != h[j].TOId {
		return h[i].TOId < h[j].TOId
	}
	return h[i].Host < h[j].Host
}
func (h recordHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recordHeap) Push(x interface{}) { *h = append(*h, x.(*core.Record)) }
func (h *recordHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
