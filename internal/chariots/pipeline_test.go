package chariots

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// fastCfg returns a small, unlimited-rate datacenter config tuned for
// tests (tight flush intervals so latency is milliseconds).
func fastCfg(self core.DCID, numDCs int) Config {
	return Config{
		Self:           self,
		NumDCs:         numDCs,
		Batchers:       2,
		Filters:        2,
		Queues:         2,
		Maintainers:    3,
		Senders:        2,
		Receivers:      2,
		PlacementBatch: 8,
		FlushThreshold: 16,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  16,
		SendInterval:   200 * time.Microsecond,
		TokenIdleWait:  100 * time.Microsecond,
	}
}

func startDC(t *testing.T, cfg Config) *Datacenter {
	t.Helper()
	dc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	t.Cleanup(dc.Stop)
	return dc
}

func TestPipelineSingleDCAppendAck(t *testing.T) {
	dc := startDC(t, fastCfg(0, 1))
	ack, err := dc.Append([]byte("hello"), []core.Tag{{Key: "k", Value: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.TOId != 1 || ack.LId != 1 {
		t.Errorf("ack = %+v, want TOId 1 LId 1", ack)
	}
	ack2, _ := dc.Append([]byte("again"), nil)
	if ack2.TOId != 2 || ack2.LId != 2 {
		t.Errorf("ack2 = %+v", ack2)
	}
}

func TestPipelineSingleDCManyRecordsDenseLIds(t *testing.T) {
	dc := startDC(t, fastCfg(0, 1))
	const n = 2000
	for i := 0; i < n; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("r%d", i)), nil)
	}
	applied := dc.Quiesce(50*time.Millisecond, 10*time.Second)
	if applied != n {
		t.Fatalf("applied %d records, want %d", applied, n)
	}
	recs, err := dc.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("log has %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LId != uint64(i+1) {
			t.Fatalf("LIds not dense at %d: %d", i, r.LId)
		}
		if r.TOId != uint64(i+1) {
			t.Fatalf("TOIds not dense at %d: %d", i, r.TOId)
		}
	}
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

func TestPipelineTwoDCsReplicate(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	const n = 300
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b%d", i)), nil)
	}
	// Every DC must converge to 2n applied records.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if a.AppliedCount() >= 2*n && b.AppliedCount() >= 2*n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("convergence timeout: a=%d b=%d", a.AppliedCount(), b.AppliedCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Quiesce(50*time.Millisecond, 5*time.Second)
	b.Quiesce(50*time.Millisecond, 5*time.Second)

	for name, dc := range map[string]*Datacenter{"A": a, "B": b} {
		recs, err := dc.LogRecords()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2*n {
			t.Fatalf("%s has %d records, want %d", name, len(recs), 2*n)
		}
		if err := CheckCausalInvariant(recs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Exactly-once: no duplicate (host, TOId).
		seen := map[core.GlobalID]bool{}
		for _, r := range recs {
			if seen[r.ID()] {
				t.Fatalf("%s: duplicate %v", name, r.ID())
			}
			seen[r.ID()] = true
		}
	}
}

func TestPipelineCausalOrderAcrossDCs(t *testing.T) {
	// A chain: A writes a1; B reads it and writes b1 (dep on a1);
	// C must apply a1 before b1 even though B's shipment may win the race.
	a := startDC(t, fastCfg(0, 3))
	b := startDC(t, fastCfg(1, 3))
	c := startDC(t, fastCfg(2, 3))
	for _, pair := range []struct {
		from *Datacenter
		to   *Datacenter
	}{{a, b}, {a, c}, {b, a}, {b, c}, {c, a}, {c, b}} {
		pair.from.ConnectTo(pair.to.Self(), pair.to.Receivers())
	}

	ackA, err := a.Append([]byte("a1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until B has applied a1, then write b1 at B with that dep.
	if !b.WaitForTOId(0, ackA.TOId, 5*time.Second) {
		t.Fatal("B never applied a1")
	}
	if _, err := b.AppendDeps([]byte("b1"), nil, []core.Dep{{DC: 0, TOId: ackA.TOId}}); err != nil {
		t.Fatal(err)
	}
	// C converges to both records.
	if !c.WaitForTOId(1, 1, 5*time.Second) || !c.WaitForTOId(0, 1, 5*time.Second) {
		t.Fatal("C never converged")
	}
	c.Quiesce(30*time.Millisecond, 5*time.Second)
	recs, err := c.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCausalInvariant(recs); err != nil {
		t.Fatal(err)
	}
	// a1 must precede b1 in C's log.
	var posA, posB int
	for i, r := range recs {
		if r.Host == 0 && r.TOId == ackA.TOId {
			posA = i
		}
		if r.Host == 1 && r.TOId == 1 {
			posB = i
		}
	}
	if posA >= posB {
		t.Errorf("a1 at %d not before b1 at %d in C's log", posA, posB)
	}
}

func TestPipelineExactlyOnceUnderDuplicateDelivery(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	ack, err := a.Append([]byte("once"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b.WaitForTOId(0, ack.TOId, 5*time.Second) {
		t.Fatal("B never applied the record")
	}
	// Maliciously redeliver the same record several times straight into
	// B's receivers.
	rec := &core.Record{Host: 0, TOId: ack.TOId, Body: []byte("once")}
	for i := 0; i < 5; i++ {
		b.Receivers()[0].Deliver(Snapshot{From: 0, Records: []*core.Record{rec}})
	}
	time.Sleep(50 * time.Millisecond)
	b.Quiesce(30*time.Millisecond, 5*time.Second)
	recs, _ := b.LogRecords()
	count := 0
	for _, r := range recs {
		if r.Host == 0 && r.TOId == ack.TOId {
			count++
		}
	}
	if count != 1 {
		t.Errorf("record applied %d times, want exactly once", count)
	}
}

func TestPipelineWithLatencyLinks(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	wrap := func(rxs []ReceiverAPI, d time.Duration) []ReceiverAPI {
		out := make([]ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			l := NewLatencyLink(rx, d)
			t.Cleanup(l.Close)
			out[i] = l
		}
		return out
	}
	const wan = 30 * time.Millisecond
	a.ConnectTo(1, wrap(b.Receivers(), wan))
	b.ConnectTo(0, wrap(a.Receivers(), wan))

	start := time.Now()
	ack, err := a.Append([]byte("transatlantic"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b.WaitForTOId(0, ack.TOId, 5*time.Second) {
		t.Fatal("replication never arrived")
	}
	elapsed := time.Since(start)
	if elapsed < wan {
		t.Errorf("replicated in %v, faster than the %v one-way latency", elapsed, wan)
	}
}

func TestPipelineGarbageCollection(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	const n = 100
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
	}
	if !b.WaitForTOId(0, n, 10*time.Second) {
		t.Fatal("B never converged")
	}
	// Wait for the awareness to round-trip: A must learn that B knows
	// A's records (heartbeats carry the table).
	deadline := time.Now().Add(5 * time.Second)
	for a.ATable().Get(1, 0) < n {
		if time.Now().After(deadline) {
			t.Fatalf("A's T[B][A] stuck at %d", a.ATable().Get(1, 0))
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Quiesce(30*time.Millisecond, 5*time.Second)

	var gcs GCState
	head, _ := a.Head()
	removed, frontier, err := a.CollectGarbage(&gcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("GC removed nothing despite full awareness")
	}
	if frontier == 0 || frontier > head {
		t.Errorf("frontier = %d, head = %d", frontier, head)
	}
	// keepAfter must stop collection.
	var gcs2 GCState
	_, frontier2, _ := b.CollectGarbage(&gcs2, 10)
	if frontier2 >= 10 {
		t.Errorf("keepAfter ignored: frontier %d", frontier2)
	}
}

func TestPipelineTable1Properties(t *testing.T) {
	// Table 1 positions Chariots as the only causal + partitioned +
	// replicated shared log. These are the three properties as tests:
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())
	const n = 90
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b%d", i)), nil)
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedCount() < 2*n || b.AppliedCount() < 2*n {
		if time.Now().After(deadline) {
			t.Fatal("no convergence")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Quiesce(30*time.Millisecond, 5*time.Second)
	b.Quiesce(30*time.Millisecond, 5*time.Second)

	// (1) Replicated: both datacenters hold every record.
	ra, _ := a.LogRecords()
	rb, _ := b.LogRecords()
	if len(ra) != 2*n || len(rb) != 2*n {
		t.Fatalf("replication incomplete: %d/%d", len(ra), len(rb))
	}
	// (2) Partitioned: each replica's log spans multiple maintainers,
	// all of which hold records.
	for _, dc := range []*Datacenter{a, b} {
		for i, m := range dc.Maintainers() {
			if m.Store().Len() == 0 {
				t.Errorf("%s maintainer %d empty: not partitioned", dc.Self(), i)
			}
		}
	}
	// (3) Causal: both logs satisfy the causal-order invariant.
	if err := CheckCausalInvariant(ra); err != nil {
		t.Error(err)
	}
	if err := CheckCausalInvariant(rb); err != nil {
		t.Error(err)
	}
}

func TestGCRunnerReclaimsContinuously(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	gc := NewGCRunner(a, 5*time.Millisecond, 0)
	gc.Start()
	defer gc.Stop()

	const n = 200
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("r%d", i)), nil)
	}
	// Once B has everything and A knows it, the runner reclaims the
	// prefix without any explicit call.
	deadline := time.Now().Add(15 * time.Second)
	for gc.Collected.Value() < n/2 {
		if time.Now().After(deadline) {
			t.Fatalf("GC runner reclaimed only %d records (frontier %d, T[B][A]=%d)",
				gc.Collected.Value(), gc.Frontier(), a.ATable().Get(1, 0))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gc.Frontier() == 0 {
		t.Error("frontier did not advance")
	}
}

// TestPipelineCarryDeferredCorrectness runs a full two-DC workload with
// the carry-deferred token policy (§6.2's alternative) and checks the same
// invariants as the park-at-queue default.
func TestPipelineCarryDeferredCorrectness(t *testing.T) {
	cfg := fastCfg(0, 2)
	cfg.CarryDeferred = true
	cfg.Queues = 3
	a := startDC(t, cfg)
	cfgB := fastCfg(1, 2)
	cfgB.CarryDeferred = true
	cfgB.Queues = 3
	b := startDC(t, cfgB)
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	const n = 150
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b%d", i)), nil)
	}
	deadline := time.Now().Add(15 * time.Second)
	for a.AppliedCount() < 2*n || b.AppliedCount() < 2*n {
		if time.Now().After(deadline) {
			t.Fatalf("carry-deferred convergence stalled: %d/%d", a.AppliedCount(), b.AppliedCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, dc := range []*Datacenter{a, b} {
		dc.Quiesce(30*time.Millisecond, 5*time.Second)
		recs, err := dc.LogRecords()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2*n {
			t.Fatalf("%s: %d records", dc.Self(), len(recs))
		}
		if err := CheckCausalInvariant(recs); err != nil {
			t.Error(err)
		}
	}
}
