package chariots

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vclock"
)

// BenchmarkPipelineBatchAllocs measures the geo-replication delta-shipping
// codec: encoding one sender snapshot (records + awareness table) and
// decoding it on the receiving side, per iteration. This is the per-batch
// buffer-management cost of the propagation/reception stages (§6.2) with
// the WAN and goroutine scheduling removed, so allocs/op is deterministic.
func BenchmarkPipelineBatchAllocs(b *testing.B) {
	const n = 64
	recs := make([]*core.Record, n)
	body := make([]byte, 128)
	for i := range body {
		body[i] = byte(i)
	}
	for i := range recs {
		recs[i] = &core.Record{
			TOId: uint64(i + 1),
			Host: 1,
			Deps: []core.Dep{{DC: 0, TOId: uint64(i)}, {DC: 2, TOId: 7}},
			Body: body,
		}
	}
	table := []vclock.Vector{{5, 6, 7}, {1, 2, 3}, {9, 9, 9}}
	snap := Snapshot{From: 1, Records: recs, ATable: table}

	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendSnapshot(buf[:0], snap)
		got, err := decodeSnapshot(buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(got.Records) != n {
			b.Fatalf("decoded %d records, want %d", len(got.Records), n)
		}
	}
}

// TestPipelineBatchAllocBudget is the tier-1 regression gate for the
// snapshot codec: one encode+decode of a 64-record snapshot must stay
// within an allocation budget. The codec measures ~8 allocs/op (down from
// 197 before the shared-arena batch decode); the bound leaves headroom
// while still failing if any per-record allocation returns.
func TestPipelineBatchAllocBudget(t *testing.T) {
	const (
		n      = 64
		budget = 24
	)
	recs := make([]*core.Record, n)
	body := make([]byte, 128)
	for i := range recs {
		recs[i] = &core.Record{
			TOId: uint64(i + 1),
			Host: 1,
			Deps: []core.Dep{{DC: 0, TOId: uint64(i)}, {DC: 2, TOId: 7}},
			Body: body,
		}
	}
	snap := Snapshot{From: 1, Records: recs, ATable: []vclock.Vector{{5, 6, 7}, {1, 2, 3}, {9, 9, 9}}}
	var buf []byte
	buf = appendSnapshot(buf[:0], snap) // warm the encode buffer
	avg := testing.AllocsPerRun(50, func() {
		buf = appendSnapshot(buf[:0], snap)
		if _, err := decodeSnapshot(buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("snapshot codec: %.1f allocs per %d-record snapshot, budget %d", avg, n, budget)
	}
}
