package chariots

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/vclock"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap := Snapshot{
		From: 2,
		Records: []*core.Record{
			{Host: 2, TOId: 1, Body: []byte("r1")},
			{Host: 2, TOId: 2, Deps: []core.Dep{{DC: 0, TOId: 4}}, Tags: []core.Tag{{Key: "k", Value: "v"}}},
		},
		ATable: []vclock.Vector{{1, 2}, {3, 4}},
	}
	got, err := decodeSnapshot(appendSnapshot(nil, snap))
	if err != nil {
		t.Fatal(err)
	}
	want := snap
	want.Owned = true // decoded records are arena-backed, owned by the snapshot
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotCodecNoTable(t *testing.T) {
	snap := Snapshot{From: 1, Records: []*core.Record{{Host: 1, TOId: 1}}}
	got, err := decodeSnapshot(appendSnapshot(nil, snap))
	if err != nil {
		t.Fatal(err)
	}
	if got.ATable != nil || got.From != 1 || len(got.Records) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestSnapshotCodecTruncated(t *testing.T) {
	buf := appendSnapshot(nil, Snapshot{From: 1, ATable: []vclock.Vector{{1}}})
	for n := 0; n < len(buf); n++ {
		if _, err := decodeSnapshot(buf[:n]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
}

// TestReplicationOverTCP runs two datacenters connected only through real
// TCP receiver endpoints.
func TestReplicationOverTCP(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))

	dialReceivers := func(dc *Datacenter) []ReceiverAPI {
		var out []ReceiverAPI
		for _, rx := range dc.Receivers() {
			srv := rpc.NewServer()
			ServeReceiver(srv, rx)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			conn, err := rpc.Dial(addr.String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { conn.Close() })
			out = append(out, NewReceiverClient(conn))
		}
		return out
	}
	a.ConnectTo(1, dialReceivers(b))
	b.ConnectTo(0, dialReceivers(a))

	const n = 150
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b%d", i)), nil)
	}
	deadline := time.Now().Add(15 * time.Second)
	for a.AppliedCount() < 2*n || b.AppliedCount() < 2*n {
		if time.Now().After(deadline) {
			t.Fatalf("TCP replication stalled: a=%d b=%d", a.AppliedCount(), b.AppliedCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	recs, _ := a.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

// TestIngestOverTCP drives a datacenter through the remote application-
// client endpoint.
func TestIngestOverTCP(t *testing.T) {
	dc := startDC(t, fastCfg(0, 1))
	srv := rpc.NewServer()
	ServeIngest(srv, dc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := rpc.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	client := NewIngestClient(conn)

	var batch []*core.Record
	for i := 0; i < 50; i++ {
		batch = append(batch, &core.Record{Body: []byte(fmt.Sprintf("remote-%d", i))})
	}
	if err := client.Append(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := client.Applied()
		if err != nil {
			t.Fatal(err)
		}
		if v.Get(0) >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested records never applied: %v", v)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Records with pre-set ids must be rejected.
	err = client.Append([]*core.Record{{TOId: 7, Body: []byte("bad")}})
	if err == nil {
		t.Error("ingest accepted a record with a TOId")
	}
}

// TestResyncAfterDroppedLink simulates a receiver outage: records shipped
// while the link is down are lost, then Resync recovers them.
func TestResyncAfterDroppedLink(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	// A→B link drops everything initially (a blackhole receiver).
	black := &blackhole{}
	a.ConnectTo(1, []ReceiverAPI{black})
	b.ConnectTo(0, a.Receivers())

	const n = 40
	for i := 0; i < n; i++ {
		if _, err := a.Append([]byte(fmt.Sprintf("a%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := b.Applied().Get(0); got != 0 {
		t.Fatalf("B applied %d records through a blackhole", got)
	}
	// Heal: reconnect and resync through sender 0.
	a.ConnectTo(1, b.Receivers())
	sent, err := a.Resync(1, a.senders[0])
	if err != nil {
		t.Fatal(err)
	}
	if sent != n {
		t.Errorf("Resync shipped %d records, want %d", sent, n)
	}
	if !b.WaitForTOId(0, n, 10*time.Second) {
		t.Fatal("B never caught up after resync")
	}
	b.Quiesce(30*time.Millisecond, 5*time.Second)
	recs, _ := b.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
	if len(recs) != n {
		t.Errorf("B has %d records, want %d", len(recs), n)
	}
}

type blackhole struct{}

func (*blackhole) Deliver(Snapshot) error { return nil }
