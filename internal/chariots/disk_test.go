package chariots

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestDatacenterOnSegmentStores runs the full pipeline against disk-backed
// segment stores and restarts it over the same directories — the
// durability configuration of cmd/flstore applied to a whole datacenter.
func TestDatacenterOnSegmentStores(t *testing.T) {
	dir := t.TempDir()
	openStores := func() []storage.Store {
		stores := make([]storage.Store, 2)
		for i := range stores {
			st, err := storage.OpenSegmentStore(
				filepath.Join(dir, fmt.Sprintf("m%d", i)),
				storage.SegmentStoreOptions{Sync: storage.SyncEachBatch})
			if err != nil {
				t.Fatal(err)
			}
			stores[i] = st
		}
		return stores
	}

	cfg := fastCfg(0, 1)
	cfg.Maintainers = 2
	cfg.Stores = openStores()
	dc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	const n = 120
	for i := 0; i < n; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("durable-%d", i)), nil)
	}
	if got := dc.Quiesce(50*time.Millisecond, 10*time.Second); got != n {
		t.Fatalf("applied %d, want %d", got, n)
	}
	dc.Stop()
	for _, st := range cfg.Stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Restart over the same directories: every record recovered, ordering
	// state rebuilt, and new appends continue the sequence.
	cfg2 := fastCfg(0, 1)
	cfg2.Maintainers = 2
	cfg2.Stores = openStores()
	dc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	dc2.Start()
	t.Cleanup(dc2.Stop)

	recs, err := dc2.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	ack, err := dc2.Append([]byte("after-restart"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.LId != n+1 || ack.TOId != n+1 {
		t.Errorf("post-restart ids = %+v, want LId/TOId %d", ack, n+1)
	}
	recs, _ = dc2.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumDCs: 0}); err == nil {
		t.Error("NumDCs 0 accepted")
	}
	if _, err := New(Config{Self: 5, NumDCs: 2}); err == nil {
		t.Error("Self out of range accepted")
	}
	if _, err := New(Config{NumDCs: 1, Maintainers: 2, Stores: []storage.Store{storage.NewMemStore()}}); err == nil {
		t.Error("store/maintainer count mismatch accepted")
	}
}

func TestMachineNames(t *testing.T) {
	if got := machineName("Batcher", 0, 1); got != "Batcher" {
		t.Errorf("single machine name = %q", got)
	}
	if got := machineName("Batcher", 1, 3); got != "Batcher 2" {
		t.Errorf("multi machine name = %q", got)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	dc, err := New(fastCfg(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	dc.Start() // second start is a no-op
	if _, err := dc.Append([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	dc.Stop()
	dc.Stop() // second stop is a no-op
	if _, err := dc.Append([]byte("y"), nil); err == nil {
		t.Error("append after stop succeeded")
	}
}
