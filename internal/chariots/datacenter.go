package chariots

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/ratelimit"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// StageRates are the per-machine capacity limits (records/second) of each
// pipeline stage; 0 means unlimited. These model the NIC/CPU bounds of the
// paper's cluster machines (DESIGN.md §3.6); the private-cloud profile in
// the evaluation sets them to the paper's measured per-machine numbers.
type StageRates struct {
	Batcher    float64
	Filter     float64
	Queue      float64
	Maintainer float64
	Store      float64
	Sender     float64
	Receiver   float64
}

// Config assembles one Chariots datacenter (§6.2).
type Config struct {
	Self   core.DCID
	NumDCs int

	Batchers    int
	Filters     int
	Queues      int
	Maintainers int
	Senders     int
	Receivers   int
	Indexers    int

	// PlacementBatch is the FLStore round size (LIds per maintainer per
	// round); defaults to 1000, the paper's Figure 4 example.
	PlacementBatch uint64

	// FlushThreshold/FlushInterval control batcher buffers; a buffer is
	// sent downstream when it holds FlushThreshold records or the
	// interval elapses.
	FlushThreshold int
	FlushInterval  time.Duration

	// SendThreshold/SendInterval control sender batching; the interval
	// also paces awareness-table heartbeats when idle.
	SendThreshold int
	SendInterval  time.Duration

	// TokenIdleWait bounds how long an idle queue holds the token.
	TokenIdleWait time.Duration
	// CarryDeferred ships dependency-blocked records with the token
	// instead of parking them at the queue that saw them (§6.2).
	CarryDeferred bool

	// Rates are the per-machine capacity limits; Burst the token-bucket
	// burst (defaults to rate/100).
	Rates StageRates
	Burst int

	// FilterNICRate, when > 0, replaces Rates.Filter with a shared-NIC
	// model: each filter machine owns one limiter of this rate charged
	// once on ingress (by the transmitting batcher) and once on egress
	// (forwarding to a queue), so steady-state filter throughput is
	// FilterNICRate/2 — the behaviour behind the paper's Figure 9.
	FilterNICRate float64

	// ChannelDepth is the inter-stage buffer depth in records (approx);
	// defaults to 8192.
	ChannelDepth int

	// PipelineCredits bounds the local records admitted at ingress but not
	// yet applied to the log (credit-based flow control, DESIGN.md §8):
	// when the pipeline holds this many in-flight records, Inject blocks —
	// or sheds, per ShedOnSaturation — until the queues drain. Defaults to
	// 32768; negative disables the bound (the gate still counts in-flight
	// records for observability).
	PipelineCredits int

	// ShedOnSaturation selects the ingress policy at the credit bound:
	// false (default) blocks the caller until credits free up
	// (backpressure); true rejects immediately with a retryable
	// SaturationError carrying a retry hint (admission control).
	ShedOnSaturation bool

	// Stores, when non-nil, supplies the maintainer backing stores
	// (index-aligned); MemStores are used otherwise. Disk-backed
	// deployments pass storage.OpenSegmentStore handles.
	Stores []storage.Store
}

func (c *Config) setDefaults() error {
	if c.NumDCs < 1 {
		return errors.New("chariots: NumDCs must be >= 1")
	}
	if int(c.Self) >= c.NumDCs {
		return fmt.Errorf("chariots: Self %d out of range for %d DCs", c.Self, c.NumDCs)
	}
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.Batchers, 1)
	def(&c.Filters, 1)
	def(&c.Queues, 1)
	def(&c.Maintainers, 1)
	if c.NumDCs > 1 {
		def(&c.Senders, 1)
		def(&c.Receivers, 1)
	}
	if c.PlacementBatch == 0 {
		c.PlacementBatch = 1000
	}
	def(&c.FlushThreshold, 256)
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Millisecond
	}
	def(&c.SendThreshold, 256)
	if c.SendInterval <= 0 {
		c.SendInterval = time.Millisecond
	}
	def(&c.ChannelDepth, 8192)
	if c.PipelineCredits == 0 { // negative = explicitly unbounded
		c.PipelineCredits = 32768
	}
	if c.Stores != nil && len(c.Stores) != c.Maintainers {
		return fmt.Errorf("chariots: %d stores for %d maintainers", len(c.Stores), c.Maintainers)
	}
	return nil
}

// Datacenter is one running Chariots instance: the full §6.2 pipeline plus
// the FLStore it persists into. Create with New, wire to peers with
// ConnectTo, then Start.
type Datacenter struct {
	cfg     Config
	state   *dcState
	group   *stageGroup
	routing *FilterRouting

	batchers    []*Batcher
	filters     []*Filter
	queues      []*Queue
	maintainers []*flstore.Maintainer
	stores      []*countingStore
	indexers    []*flstore.Indexer
	senders     []*Sender
	receivers   []*Receiver
	gossipers   []*flstore.Gossiper

	maintainerMachines []*StageMachine
	reader             *flstore.Client

	initialToken *Token

	rrBatcher atomic.Uint64
	startMu   sync.Mutex
	started   bool
	stopped   bool
}

// New builds (but does not start) a datacenter.
func New(cfg Config) (*Datacenter, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	dc := &Datacenter{cfg: cfg, group: newStageGroup()}
	dc.state = newDCState(cfg.Self, cfg.NumDCs, 0)
	dc.state.feedEnabled = cfg.Senders > 0 && cfg.NumDCs > 1
	creditCap := cfg.PipelineCredits
	if creditCap < 0 {
		creditCap = 0 // counting-only gate
	}
	dc.state.credits = newCreditGate(creditCap)

	var err error
	dc.routing, err = NewFilterRouting(cfg.NumDCs, cfg.Filters)
	if err != nil {
		return nil, err
	}

	burst := func(rate float64) int {
		if cfg.Burst > 0 {
			return cfg.Burst
		}
		// The burst must comfortably exceed one pipeline batch (flush
		// threshold, queue drain cycle) so that consecutive stages'
		// token-bucket charges overlap in time the way independent
		// machines do rather than serializing within one goroutine.
		b := int(rate / 40)
		if b < 64 {
			b = 64
		}
		return b
	}
	newLim := func(rate float64) *ratelimit.Limiter {
		return ratelimit.New(rate, burst(rate))
	}

	// Indexers.
	var indexerAPIs []flstore.IndexerAPI
	for i := 0; i < cfg.Indexers; i++ {
		ix := flstore.NewIndexer(nil)
		dc.indexers = append(dc.indexers, ix)
		indexerAPIs = append(indexerAPIs, ix)
	}

	// FLStore maintainers (capacity modelled by a wrapping machine so
	// the pipeline gets blocking backpressure rather than rejections).
	placement := flstore.Placement{NumMaintainers: cfg.Maintainers, BatchSize: cfg.PlacementBatch}
	var appendAPIs []flstore.MaintainerAPI // rate-limited, used by queues
	var readAPIs []flstore.MaintainerAPI   // direct, used by readers
	for i := 0; i < cfg.Maintainers; i++ {
		var backing storage.Store
		if cfg.Stores != nil {
			backing = cfg.Stores[i]
		} else {
			backing = storage.NewMemStore()
		}
		cs := &countingStore{Store: backing}
		cs.sm.Limiter = newLim(cfg.Rates.Store)
		cs.sm.Name = machineName("Store", i, cfg.Maintainers)
		dc.stores = append(dc.stores, cs)

		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:     i,
			Placement: placement,
			Store:     cs,
			Indexers:  indexerAPIs,
		})
		if err != nil {
			return nil, err
		}
		dc.maintainers = append(dc.maintainers, m)
		readAPIs = append(readAPIs, m)

		lm := &limitedMaintainer{MaintainerAPI: m}
		lm.sm.Limiter = newLim(cfg.Rates.Maintainer)
		lm.sm.Name = machineName("Maintainer", i, cfg.Maintainers)
		dc.maintainerMachines = append(dc.maintainerMachines, &lm.sm)
		appendAPIs = append(appendAPIs, lm)
	}
	dc.reader, err = flstore.NewDirectClient(placement, readAPIs, indexerAPIs)
	if err != nil {
		return nil, err
	}

	// Restart path: when the backing stores already hold records (a
	// datacenter recovering with its persistent log), rebuild the
	// ordering state — the token's applied vector and next LId, and the
	// awareness table's self row — from the log itself.
	dc.initialToken = NewToken(cfg.NumDCs)
	if recs, err := dc.LogRecords(); err == nil && len(recs) > 0 {
		for _, rec := range recs {
			dc.initialToken.Applied.Advance(rec.Host, rec.TOId)
			dc.state.atable.RecordApplied(rec.Host, rec.TOId)
			if rec.LId >= dc.initialToken.NextLId {
				dc.initialToken.NextLId = rec.LId + 1
			}
		}
	}

	// HL gossip among maintainers.
	for i, m := range dc.maintainers {
		peers := make([]flstore.MaintainerAPI, cfg.Maintainers)
		for j := range peers {
			if j != i {
				peers[j] = dc.maintainers[j]
			}
		}
		dc.gossipers = append(dc.gossipers, flstore.NewGossiper(m, peers, time.Millisecond))
	}

	// Queues.
	var queueIns []chan<- []*core.Record
	for i := 0; i < cfg.Queues; i++ {
		in := make(chan []*core.Record, depthFor(cfg.ChannelDepth, cfg.FlushThreshold))
		q := NewQueue(machineName("Queue", i, cfg.Queues), newLim(cfg.Rates.Queue), i,
			dc.state, in, placement, appendAPIs, cfg.CarryDeferred, cfg.TokenIdleWait)
		q.stopC = dc.group.stop
		dc.queues = append(dc.queues, q)
		queueIns = append(queueIns, in)
	}
	for i, q := range dc.queues {
		q.SetNext(dc.queues[(i+1)%len(dc.queues)].TokenIn())
	}

	// Filters.
	var filterIns []chan<- []*core.Record
	var filterNICs []*ratelimit.Limiter
	for i := 0; i < cfg.Filters; i++ {
		in := make(chan []*core.Record, depthFor(cfg.ChannelDepth, cfg.FlushThreshold))
		filterRate := cfg.Rates.Filter
		if cfg.FilterNICRate > 0 {
			filterRate = 0 // NIC model replaces the per-record limiter
		}
		f := NewFilter(machineName("Filter", i, cfg.Filters), newLim(filterRate), i,
			cfg.Self, in, dc.routing, queueIns, 0)
		f.stopC = dc.group.stop
		if cfg.FilterNICRate > 0 {
			f.nic = newLim(cfg.FilterNICRate)
		}
		filterNICs = append(filterNICs, f.nic)
		dc.filters = append(dc.filters, f)
		filterIns = append(filterIns, in)
	}

	// Batchers.
	var batcherIns []chan<- []*core.Record
	for i := 0; i < cfg.Batchers; i++ {
		in := make(chan []*core.Record, depthFor(cfg.ChannelDepth, cfg.FlushThreshold))
		b := NewBatcher(machineName("Batcher", i, cfg.Batchers), newLim(cfg.Rates.Batcher), in,
			dc.routing, filterIns, cfg.FlushThreshold, cfg.FlushInterval)
		b.stopC = dc.group.stop
		if cfg.FilterNICRate > 0 {
			b.nics = filterNICs
		}
		dc.batchers = append(dc.batchers, b)
		batcherIns = append(batcherIns, in)
	}

	// A restarting datacenter's filters must treat the recovered prefix
	// as already delivered, or resynced records (which start after it)
	// would wait forever for TOIds the log already holds.
	for _, f := range dc.filters {
		for host := 0; host < cfg.NumDCs; host++ {
			if toid := dc.initialToken.Applied.Get(core.DCID(host)); toid > 0 {
				f.seedLast(core.DCID(host), toid)
			}
		}
	}

	// Receivers and senders (multi-DC only).
	for i := 0; i < cfg.Receivers; i++ {
		r := NewReceiver(machineName("Receiver", i, cfg.Receivers), newLim(cfg.Rates.Receiver),
			dc.state, batcherIns)
		r.stopC = dc.group.stop
		dc.receivers = append(dc.receivers, r)
	}
	for i := 0; i < cfg.Senders; i++ {
		s := NewSender(machineName("Sender", i, cfg.Senders), newLim(cfg.Rates.Sender),
			dc.state, cfg.SendThreshold, cfg.SendInterval)
		dc.senders = append(dc.senders, s)
	}
	return dc, nil
}

func depthFor(depth, flush int) int {
	d := depth / max(flush, 1)
	if d < 4 {
		d = 4
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Self returns this datacenter's id.
func (dc *Datacenter) Self() core.DCID { return dc.cfg.Self }

// ConnectTo registers the receivers of a remote datacenter with every
// sender. Call before Start (or during operation to add a datacenter).
func (dc *Datacenter) ConnectTo(remote core.DCID, receivers []ReceiverAPI) {
	for _, s := range dc.senders {
		s.Connect(remote, receivers)
	}
}

// Receivers returns this datacenter's reception endpoints for peers to
// connect to (wrap in LatencyLink to model the WAN).
func (dc *Datacenter) Receivers() []ReceiverAPI {
	out := make([]ReceiverAPI, len(dc.receivers))
	for i, r := range dc.receivers {
		out[i] = r
	}
	return out
}

// Start launches every stage goroutine and injects the token.
func (dc *Datacenter) Start() {
	dc.startMu.Lock()
	defer dc.startMu.Unlock()
	if dc.started {
		return
	}
	dc.started = true
	for _, b := range dc.batchers {
		b := b
		dc.group.go1(func() { b.run(dc.group.stop) })
	}
	for _, f := range dc.filters {
		f := f
		dc.group.go1(func() { f.run(dc.group.stop) })
	}
	for _, q := range dc.queues {
		q := q
		dc.group.go1(func() { q.run(dc.group.stop) })
	}
	for _, s := range dc.senders {
		s := s
		dc.group.go1(func() { s.run(dc.group.stop) })
	}
	for _, g := range dc.gossipers {
		g.Start()
	}
	dc.queues[0].TokenIn() <- dc.initialToken
}

// Stop halts the pipeline and joins all goroutines. Records still in
// flight are dropped; call Quiesce first if the experiment needs them
// applied.
func (dc *Datacenter) Stop() {
	dc.startMu.Lock()
	defer dc.startMu.Unlock()
	if !dc.started || dc.stopped {
		return
	}
	dc.stopped = true
	for _, g := range dc.gossipers {
		g.Stop()
	}
	dc.state.credits.close() // wake ingress calls blocked on credits
	dc.group.halt()
}

// ingressShedHint is the retry hint attached to shed rejections: one flush
// interval's worth of drain is the shortest wait after which the pipeline
// can plausibly have freed credits.
const ingressShedHint = time.Millisecond

// Inject pushes a batch of records into a round-robin-selected batcher —
// the entry point used by workload generators and the RPC ingestion
// endpoint. It always uses the blocking policy: when the pipeline's credit
// gate is exhausted it waits for the queues to drain (backpressure).
func (dc *Datacenter) Inject(recs []*core.Record) {
	_ = dc.inject(recs, false)
}

// TryInject is Inject under the shedding policy regardless of
// Config.ShedOnSaturation: when the credit gate is exhausted it rejects
// the whole batch with a retryable *SaturationError instead of blocking.
func (dc *Datacenter) TryInject(recs []*core.Record) error {
	return dc.inject(recs, true)
}

func (dc *Datacenter) inject(recs []*core.Record, shed bool) error {
	g := dc.state.credits
	if g != nil {
		if shed {
			if !g.tryAcquire(len(recs)) {
				return &SaturationError{RetryAfter: ingressShedHint}
			}
		} else if !g.acquire(len(recs)) {
			return ErrStopped
		}
	}
	i := dc.rrBatcher.Add(1) - 1
	b := dc.batchers[int(i%uint64(len(dc.batchers)))]
	select {
	case b.In() <- recs:
		return nil
	case <-dc.group.stop:
		// The records never entered the pipeline; return their credits so
		// concurrent acquirers racing shutdown are not wedged.
		if g != nil {
			g.release(len(recs))
		}
		return ErrStopped
	}
}

// AppendAsync submits one record to the pipeline without waiting for its
// ids. Under the shed policy a saturated pipeline drops the record (the
// gate's shed counter records it); the blocking policy waits for credits.
func (dc *Datacenter) AppendAsync(body []byte, tags []core.Tag) {
	_ = dc.inject([]*core.Record{dc.newLocalRecord(body, tags, nil)}, dc.cfg.ShedOnSaturation)
}

// Append submits one record and waits until the pipeline applies it,
// returning its assigned TOId and LId.
func (dc *Datacenter) Append(body []byte, tags []core.Tag) (AppendAck, error) {
	return dc.AppendDeps(body, tags, nil)
}

// AppendDeps is Append with an explicit causal dependency vector (client
// sessions use it to encode their reads). Under the shed policy a
// saturated pipeline returns a retryable *SaturationError immediately.
func (dc *Datacenter) AppendDeps(body []byte, tags []core.Tag, deps []core.Dep) (AppendAck, error) {
	rec := dc.newLocalRecord(body, tags, deps)
	// The root span covers submit → applied ack; the record carries the
	// child context through every pipeline stage, so stage hops parent
	// under this root.
	root, rtc := trace.BeginRoot(trace.New(), "dc.append")
	if root.Sampled() {
		rec.Trace = rtc
	}
	ch := make(chan AppendAck, 1)
	dc.state.registerAck(rec, (chan<- AppendAck)(ch))
	if err := dc.inject([]*core.Record{rec}, dc.cfg.ShedOnSaturation); err != nil {
		dc.state.unregisterAck(rec)
		out := "error"
		if errors.Is(err, ErrPipelineSaturated) {
			out = "overload"
		}
		root.Finish(trace.Default(), out, 0, 1)
		return AppendAck{}, err
	}
	select {
	case ack := <-ch:
		root.Finish(trace.Default(), "", ack.LId, 1)
		return ack, nil
	case <-dc.group.stop:
		root.Finish(trace.Default(), "cancel", 0, 1)
		return AppendAck{}, ErrStopped
	}
}

func (dc *Datacenter) newLocalRecord(body []byte, tags []core.Tag, deps []core.Dep) *core.Record {
	if deps == nil {
		deps = dc.state.atable.SelfVector().Deps()
	}
	return &core.Record{Host: dc.cfg.Self, Deps: deps, Tags: tags, Body: body}
}

// Reader returns the FLStore client for reading this datacenter's log.
func (dc *Datacenter) Reader() *flstore.Client { return dc.reader }

// ATable exposes the datacenter's awareness table.
func (dc *Datacenter) ATable() *vclock.ATable { return dc.state.atable }

// Applied returns this datacenter's knowledge vector (max applied TOId per
// host) — the causal frontier of its log.
func (dc *Datacenter) Applied() vclock.Vector { return dc.state.atable.SelfVector() }

// Head returns the readable head of the datacenter's log.
func (dc *Datacenter) Head() (uint64, error) { return dc.reader.HeadExact() }

// LogRecords returns every applied record ordered by LId (test,
// equivalence-check, and restart-recovery introspection). The gap-free
// prefix up to the head comes from one scatter-gather range read, already
// in LId order; only the partially filled tail rounds past the head (which
// restart recovery needs for NextLId) fall back to bounded maintainer
// scans.
func (dc *Datacenter) LogRecords() ([]*core.Record, error) {
	head, err := dc.reader.HeadExact()
	if err != nil {
		return nil, err
	}
	all, err := dc.reader.ReadRange(1, head)
	if err != nil {
		return nil, err
	}
	var tail []*core.Record
	for _, m := range dc.maintainers {
		recs, err := m.Scan(core.Rule{MinLId: head + 1})
		if err != nil {
			return nil, err
		}
		tail = append(tail, recs...)
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].LId < tail[j].LId })
	return append(all, tail...), nil
}

// Machines returns every stage machine's (name, processed count) rows in
// pipeline order — the data behind the paper's Tables 2–5.
func (dc *Datacenter) Machines() []*StageMachine {
	var out []*StageMachine
	for _, b := range dc.batchers {
		out = append(out, &b.StageMachine)
	}
	for _, f := range dc.filters {
		out = append(out, &f.StageMachine)
	}
	for _, q := range dc.queues {
		out = append(out, &q.StageMachine)
	}
	out = append(out, dc.maintainerMachines...)
	for _, s := range dc.stores {
		out = append(out, &s.sm)
	}
	for _, s := range dc.senders {
		out = append(out, &s.StageMachine)
	}
	for _, r := range dc.receivers {
		out = append(out, &r.StageMachine)
	}
	return out
}

// Routing exposes the filter routing (elasticity operations).
func (dc *Datacenter) Routing() *FilterRouting { return dc.routing }

// Queues exposes the queue machines (elasticity and tests).
func (dc *Datacenter) Queues() []*Queue { return dc.queues }

// Maintainers exposes the FLStore maintainers.
func (dc *Datacenter) Maintainers() []*flstore.Maintainer { return dc.maintainers }

// Senders exposes the sender machines (resync and elasticity operations).
func (dc *Datacenter) Senders() []*Sender { return dc.senders }

// AppliedCount returns the total number of records applied to the log.
func (dc *Datacenter) AppliedCount() uint64 {
	var n uint64
	for _, q := range dc.queues {
		n += q.Applied.Value()
	}
	return n
}

// Quiesce waits until the number of applied records stops growing for
// settle (or deadline expires), so tests can stop without dropping
// in-flight records. It returns the final applied count.
func (dc *Datacenter) Quiesce(settle, deadline time.Duration) uint64 {
	start := time.Now()
	last := dc.AppliedCount()
	lastChange := time.Now()
	for {
		time.Sleep(settle / 4)
		cur := dc.AppliedCount()
		if cur != last {
			last = cur
			lastChange = time.Now()
		} else if time.Since(lastChange) >= settle {
			return cur
		}
		if time.Since(start) > deadline {
			return cur
		}
	}
}

// limitedMaintainer charges AppendAssigned batches against a stage machine
// before delegating, giving the pipeline blocking backpressure at the
// maintainer boundary.
type limitedMaintainer struct {
	flstore.MaintainerAPI
	sm StageMachine
}

func (lm *limitedMaintainer) AppendAssigned(recs []*core.Record) error {
	lm.sm.work(len(recs))
	return lm.MaintainerAPI.AppendAssigned(recs)
}

// countingStore charges stored batches against the "Store" machine.
type countingStore struct {
	storage.Store
	sm StageMachine
}

func (cs *countingStore) Append(r *core.Record) error {
	cs.sm.work(1)
	return cs.Store.Append(r)
}

func (cs *countingStore) AppendBatch(rs []*core.Record) error {
	cs.sm.work(len(rs))
	return cs.Store.AppendBatch(rs)
}
