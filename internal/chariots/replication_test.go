package chariots

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vclock"
)

// collectingReceiver records delivered snapshots for inspection.
type collectingReceiver struct {
	mu    sync.Mutex
	snaps []Snapshot
}

func (c *collectingReceiver) Deliver(snap Snapshot) error {
	c.mu.Lock()
	c.snaps = append(c.snaps, snap)
	c.mu.Unlock()
	return nil
}

func (c *collectingReceiver) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}

func (c *collectingReceiver) records() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.snaps {
		n += len(s.Records)
	}
	return n
}

func TestSenderShipsBatchesAndHeartbeats(t *testing.T) {
	state := newDCState(0, 2, 64)
	state.feedEnabled = true
	s := NewSender("Sender", nil, state, 4, 2*time.Millisecond)
	rx := &collectingReceiver{}
	s.Connect(1, []ReceiverAPI{rx})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.run(stop)
	}()

	// Feed 10 records: with threshold 4, at least two full shipments.
	for i := 1; i <= 10; i++ {
		state.localFeed <- &core.Record{Host: 0, TOId: uint64(i), LId: uint64(i)}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rx.records() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d records shipped", rx.records())
		}
		time.Sleep(time.Millisecond)
	}
	// Idle period: heartbeats (snapshots with no records) keep flowing.
	before := rx.count()
	time.Sleep(20 * time.Millisecond)
	if rx.count() <= before {
		t.Error("no heartbeats while idle")
	}
	close(stop)
	<-done
	if got := s.Shipped.Value(); got != 10 {
		t.Errorf("Shipped = %d, want 10", got)
	}
	// Every shipment carries the awareness table.
	rx.mu.Lock()
	defer rx.mu.Unlock()
	for i, snap := range rx.snaps {
		if snap.ATable == nil {
			t.Fatalf("snapshot %d missing awareness table", i)
		}
		if snap.From != 0 {
			t.Fatalf("snapshot %d from %v", i, snap.From)
		}
	}
}

func TestSenderShipsToAllConnectedDCs(t *testing.T) {
	state := newDCState(0, 3, 64)
	state.feedEnabled = true
	s := NewSender("Sender", nil, state, 1, time.Millisecond)
	rx1, rx2 := &collectingReceiver{}, &collectingReceiver{}
	s.Connect(1, []ReceiverAPI{rx1})
	s.Connect(2, []ReceiverAPI{rx2})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); s.run(stop) }()
	state.localFeed <- &core.Record{Host: 0, TOId: 1, LId: 1}
	deadline := time.Now().Add(5 * time.Second)
	for rx1.records() < 1 || rx2.records() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("fan-out incomplete: %d/%d", rx1.records(), rx2.records())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
}

func TestSenderShipsCopiesNotAliases(t *testing.T) {
	state := newDCState(0, 2, 64)
	state.feedEnabled = true
	s := NewSender("Sender", nil, state, 1, time.Millisecond)
	rx := &collectingReceiver{}
	s.Connect(1, []ReceiverAPI{rx})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); s.run(stop) }()

	orig := &core.Record{Host: 0, TOId: 1, LId: 1, Body: []byte("original")}
	state.localFeed <- orig
	deadline := time.Now().Add(5 * time.Second)
	for rx.records() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("never shipped")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	rx.mu.Lock()
	snap := rx.snaps[0]
	rx.mu.Unlock()
	// An in-process sender ships a read-only borrow of the log's records:
	// the snapshot must not claim ownership, so receivers clone before
	// mutating.
	if snap.Owned {
		t.Fatal("sender marked a borrowed snapshot as Owned")
	}
	state2 := newDCState(1, 2, 64)
	out := make(chan []*core.Record, 1)
	r := NewReceiver("Receiver", nil, state2, []chan<- []*core.Record{out})
	if err := r.Deliver(snap); err != nil {
		t.Fatal(err)
	}
	batch := <-out
	batch[0].Body[0] = 'X'
	if orig.Body[0] != 'o' {
		t.Error("received record aliases the local log's buffers")
	}
}

func TestReceiverClearsLIdsAndMergesTable(t *testing.T) {
	state := newDCState(1, 2, 64)
	out := make(chan []*core.Record, 4)
	r := NewReceiver("Receiver", nil, state, []chan<- []*core.Record{out})

	remoteTable := vclock.NewATable(0, 2)
	remoteTable.Advance(0, 0, 7)
	err := r.Deliver(Snapshot{
		From:    0,
		Records: []*core.Record{{Host: 0, TOId: 1, LId: 42, Body: []byte("x")}},
		ATable:  remoteTable.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := <-out
	if len(batch) != 1 {
		t.Fatalf("forwarded %d records", len(batch))
	}
	if batch[0].LId != 0 {
		t.Errorf("LId not cleared: %d (LIds are per-datacenter)", batch[0].LId)
	}
	if got := state.atable.Get(0, 0); got != 7 {
		t.Errorf("table not merged: T[0][0] = %d, want 7", got)
	}
	if r.Processed.Value() != 1 {
		t.Errorf("Processed = %d", r.Processed.Value())
	}
}

func TestReceiverTableOnlySnapshot(t *testing.T) {
	state := newDCState(1, 2, 64)
	out := make(chan []*core.Record, 1)
	r := NewReceiver("Receiver", nil, state, []chan<- []*core.Record{out})
	remote := vclock.NewATable(0, 2)
	remote.Advance(0, 1, 3)
	if err := r.Deliver(Snapshot{From: 0, ATable: remote.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-out:
		t.Fatalf("heartbeat produced a record batch: %v", batch)
	default:
	}
	if got := state.atable.Get(0, 1); got != 3 {
		t.Errorf("heartbeat table not merged: %d", got)
	}
}

func TestLatencyLinkOrderPreserved(t *testing.T) {
	rx := &collectingReceiver{}
	l := NewLatencyLink(rx, 5*time.Millisecond)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		l.Deliver(Snapshot{From: 0, Records: []*core.Record{{Host: 0, TOId: uint64(i)}}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for rx.count() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of 5", rx.count())
		}
		time.Sleep(time.Millisecond)
	}
	rx.mu.Lock()
	defer rx.mu.Unlock()
	for i, snap := range rx.snaps {
		if snap.Records[0].TOId != uint64(i+1) {
			t.Fatalf("delivery %d has TOId %d (reordered)", i, snap.Records[0].TOId)
		}
	}
}

func TestLatencyLinkCloseDropsQueued(t *testing.T) {
	rx := &collectingReceiver{}
	l := NewLatencyLink(rx, time.Hour) // nothing will ever deliver
	l.Deliver(Snapshot{From: 0})
	l.Close()
	if rx.count() != 0 {
		t.Error("closed link delivered anyway")
	}
	// Deliver after close must not block or panic.
	if err := l.Deliver(Snapshot{From: 0}); err != nil {
		t.Errorf("Deliver after close: %v", err)
	}
}
