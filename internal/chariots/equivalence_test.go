package chariots

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDistributedEquivalentToAbstract drives the same workload through the
// abstract solution (§6.1) and the distributed pipeline (§6.2) and checks
// the pipeline's guarantees subsume the abstract ones: identical record
// sets, identical per-host total-order subsequences, and causally valid
// logs. (The interleaving of concurrent records may differ — causal order
// permits that — so logs are compared as constrained sequences, not
// byte-for-byte.)
func TestDistributedEquivalentToAbstract(t *testing.T) {
	const nDCs = 2
	const perDC = 120

	// --- abstract run ---
	abs := make([]*AbstractDC, nDCs)
	for i := range abs {
		abs[i] = NewAbstractDC(core.DCID(i), nDCs)
	}
	for i := 0; i < perDC; i++ {
		for d := range abs {
			abs[d].Append([]byte(fmt.Sprintf("%d-%d", d, i)), nil)
		}
		if i%10 == 9 { // periodic exchange
			abs[1].Receive(abs[0].Propagate(1))
			abs[0].Receive(abs[1].Propagate(0))
		}
	}
	for r := 0; r < 3; r++ {
		abs[1].Receive(abs[0].Propagate(1))
		abs[0].Receive(abs[1].Propagate(0))
	}

	// --- distributed run ---
	a := startDC(t, fastCfg(0, nDCs))
	b := startDC(t, fastCfg(1, nDCs))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())
	for i := 0; i < perDC; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("0-%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("1-%d", i)), nil)
	}
	deadline := time.Now().Add(15 * time.Second)
	for a.AppliedCount() < nDCs*perDC || b.AppliedCount() < nDCs*perDC {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not converge: %d/%d", a.AppliedCount(), b.AppliedCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Quiesce(30*time.Millisecond, 5*time.Second)
	b.Quiesce(30*time.Millisecond, 5*time.Second)

	distLogs := map[string][]*core.Record{}
	for name, dc := range map[string]*Datacenter{"A": a, "B": b} {
		recs, err := dc.LogRecords()
		if err != nil {
			t.Fatal(err)
		}
		distLogs[name] = recs
	}

	// 1. Same record bodies as the abstract run (the pipeline may
	// number concurrent local appends in a different order — §5.4:
	// "Concurrent appends... do not have precedence relative to each
	// other" — so (host,TOId)→body bindings can differ; the *set* of
	// records per host cannot).
	absBodies := map[string]int{}
	for _, rec := range abs[0].Log() {
		absBodies[fmt.Sprintf("%s|%s", rec.Host, rec.Body)]++
	}
	for name, recs := range distLogs {
		if len(recs) != abs[0].Len() {
			t.Fatalf("%s: %d records, abstract has %d", name, len(recs), abs[0].Len())
		}
		got := map[string]int{}
		for _, rec := range recs {
			got[fmt.Sprintf("%s|%s", rec.Host, rec.Body)]++
		}
		for k, n := range absBodies {
			if got[k] != n {
				t.Fatalf("%s: body %q count %d, abstract %d", name, k, got[k], n)
			}
		}
	}
	// 2. Causal invariant holds everywhere (abstract too).
	for d := range abs {
		if err := CheckCausalInvariant(abs[d].Log()); err != nil {
			t.Fatalf("abstract %d: %v", d, err)
		}
	}
	for name, recs := range distLogs {
		if err := CheckCausalInvariant(recs); err != nil {
			t.Fatalf("distributed %s: %v", name, err)
		}
	}
	// 3. Per-host subsequences (bodies in TOId order) identical between
	// the two distributed replicas: copies share (host, TOId), so the
	// host's total order must read the same at every datacenter — the
	// first causality clause of §3.
	subseq := func(log []*core.Record, host core.DCID) []string {
		var out []string
		for _, r := range log {
			if r.Host == host {
				out = append(out, string(r.Body))
			}
		}
		return out
	}
	for h := core.DCID(0); h < nDCs; h++ {
		want := subseq(distLogs["A"], h)
		got := subseq(distLogs["B"], h)
		if len(got) != len(want) {
			t.Fatalf("host %s: A has %d records, B has %d", h, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("host %s position %d: A %q != B %q", h, i, want[i], got[i])
			}
		}
	}
}

// TestPipelineRandomizedConvergence fuzzes schedules: random appends at 3
// DCs over latency links with random delays, then checks convergence and
// causal validity.
func TestPipelineRandomizedConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized convergence is slow")
	}
	rng := rand.New(rand.NewSource(7))
	const nDCs = 3
	dcs := make([]*Datacenter, nDCs)
	for i := range dcs {
		dcs[i] = startDC(t, fastCfg(core.DCID(i), nDCs))
	}
	for i := range dcs {
		for j := range dcs {
			if i == j {
				continue
			}
			var rxs []ReceiverAPI
			for _, rx := range dcs[j].Receivers() {
				l := NewLatencyLink(rx, time.Duration(1+rng.Intn(8))*time.Millisecond)
				t.Cleanup(l.Close)
				rxs = append(rxs, l)
			}
			dcs[i].ConnectTo(core.DCID(j), rxs)
		}
	}
	const perDC = 200
	for i := 0; i < perDC; i++ {
		for d := range dcs {
			dcs[d].AppendAsync([]byte(fmt.Sprintf("%d-%d", d, i)), nil)
		}
		if rng.Intn(4) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, dc := range dcs {
			if dc.AppliedCount() < nDCs*perDC {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: %d %d %d", dcs[0].AppliedCount(), dcs[1].AppliedCount(), dcs[2].AppliedCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, dc := range dcs {
		dc.Quiesce(30*time.Millisecond, 5*time.Second)
		recs, err := dc.LogRecords()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != nDCs*perDC {
			t.Errorf("DC%d: %d records, want %d", i, len(recs), nDCs*perDC)
		}
		if err := CheckCausalInvariant(recs); err != nil {
			t.Errorf("DC%d: %v", i, err)
		}
	}
}
