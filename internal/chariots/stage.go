package chariots

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/ratelimit"
)

// StageMachine is the common substrate of one simulated machine in the
// Chariots pipeline (§6.2): a name for the experiment tables, a capacity
// limiter standing in for the machine's NIC/CPU bound, and a processed-
// records counter that the evaluation samples.
type StageMachine struct {
	Name      string
	Limiter   *ratelimit.Limiter
	Processed metrics.Counter

	// batchSize, when set (by Datacenter.EnableMetrics, before the stage
	// starts), observes the records-per-batch distribution this machine
	// sees — undersized batches at a stage mean its upstream is flushing
	// on the interval rather than the threshold.
	batchSize *metrics.BucketHistogram
}

// work charges n records against the machine's capacity (blocking until
// admitted — upstream backpressure forms through the bounded channels that
// feed the machine) and counts them as processed.
func (s *StageMachine) work(n int) {
	s.Limiter.WaitN(n)
	s.Processed.Add(uint64(n))
	if h := s.batchSize; h != nil {
		h.Observe(float64(n))
	}
}

// Throughput rows for the experiment tables are read via Name/Processed.

// stageGroup tracks the goroutines of one datacenter so Stop can join them.
type stageGroup struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func newStageGroup() *stageGroup { return &stageGroup{stop: make(chan struct{})} }

// go1 runs fn in a tracked goroutine.
func (g *stageGroup) go1(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		fn()
	}()
}

// halt signals every stage and waits for all goroutines.
func (g *stageGroup) halt() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.wg.Wait()
}

// machineName formats a stage machine's display name ("Batcher 2").
func machineName(kind string, i, total int) string {
	if total == 1 {
		return kind
	}
	return fmt.Sprintf("%s %d", kind, i+1)
}
