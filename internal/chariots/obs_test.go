package chariots

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// findValue scrapes reg and returns the value of one series (fatal when the
// series is not registered — that is a wiring bug, not a timing issue).
func findValue(t *testing.T, reg *metrics.Registry, name string, labels map[string]string) float64 {
	t.Helper()
	s := reg.Snapshot().Find(name, labels)
	if s == nil {
		t.Fatalf("series %s%v not registered", name, labels)
	}
	return s.Value
}

// TestPipelineMetricsMidRun drives a replicating two-datacenter pipeline
// and scrapes the registry while records are in flight: the per-stage
// series must be registered and live, and the per-remote replication lag
// must rise while the WAN link delays shipments, then drain back to zero.
func TestPipelineMetricsMidRun(t *testing.T) {
	reg := metrics.NewRegistry()

	a, err := New(fastCfg(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fastCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	a.EnableMetrics(reg) // before Start: stage hooks install unsynchronized

	// Delay replication both ways so remote acknowledgement measurably
	// trails local applies.
	const wan = 50 * time.Millisecond
	wrap := func(rxs []ReceiverAPI) []ReceiverAPI {
		out := make([]ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			l := NewLatencyLink(rx, wan)
			t.Cleanup(l.Close)
			out[i] = l
		}
		return out
	}
	a.ConnectTo(1, wrap(b.Receivers()))
	b.ConnectTo(0, wrap(a.Receivers()))
	a.Start()
	b.Start()
	t.Cleanup(a.Stop)
	t.Cleanup(b.Stop)

	const n = 400
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("rec%d", i)), nil)
	}

	// Mid-run: replication lag toward DC 1 must be visible while the WAN
	// round trip is outstanding.
	lagLbl := map[string]string{"dc": "0", "remote": "1"}
	deadline := time.Now().Add(5 * time.Second)
	var sawRecords, sawSeconds bool
	for time.Now().Before(deadline) && !(sawRecords && sawSeconds) {
		if findValue(t, reg, "chariots_replication_lag_records", lagLbl) > 0 {
			sawRecords = true
		}
		if findValue(t, reg, "chariots_replication_lag_seconds", lagLbl) > 0 {
			sawSeconds = true
		}
		time.Sleep(time.Millisecond)
	}
	if !sawRecords || !sawSeconds {
		t.Errorf("never observed positive replication lag (records=%v seconds=%v)", sawRecords, sawSeconds)
	}

	// The exposition endpoint must render while the pipeline runs.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chariots_stage_inbox_batches") {
		t.Error("exposition missing chariots_stage_inbox_batches")
	}

	a.Quiesce(50*time.Millisecond, 10*time.Second)

	// Every stage kind of DC 0 exports a live inbox-depth gauge and a
	// processed counter; the stages that did work counted it.
	for _, stage := range []string{"batcher", "filter", "queue"} {
		lbl := map[string]string{"dc": "0", "stage": stage}
		if findValue(t, reg, "chariots_stage_inbox_batches", lbl) < 0 {
			t.Errorf("%s inbox gauge negative", stage)
		}
		if v := findValue(t, reg, "chariots_stage_processed_total", lbl); v == 0 {
			t.Errorf("%s processed = 0, want > 0", stage)
		}
	}
	snap := reg.Snapshot()
	if s := snap.Find("chariots_stage_batch_records", map[string]string{"dc": "0", "stage": "queue"}); s == nil || s.Count == 0 {
		t.Errorf("queue batch-size histogram = %+v, want observations", s)
	}
	if v := findValue(t, reg, "chariots_applied_records_total", map[string]string{"dc": "0"}); v < n {
		t.Errorf("applied_records_total = %v, want >= %d", v, n)
	}
	// The embedded FLStore maintainers export through the same registry.
	if s := snap.Find("flstore_head_lid", map[string]string{"dc": "0", "maintainer": "0"}); s == nil {
		t.Error("flstore_head_lid not registered for maintainer 0")
	}

	// Once DC 1 has acknowledged everything, both lag gauges must drain
	// to zero (awareness heartbeats keep flowing while idle).
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if findValue(t, reg, "chariots_replication_lag_records", lagLbl) == 0 &&
			findValue(t, reg, "chariots_replication_lag_seconds", lagLbl) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("replication lag never drained: records=%v seconds=%v",
		findValue(t, reg, "chariots_replication_lag_records", lagLbl),
		findValue(t, reg, "chariots_replication_lag_seconds", lagLbl))
}

// TestGCRunnerMetrics exercises the reclaim gauges against a single-DC
// datacenter whose whole log is GC-safe.
func TestGCRunnerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	dc, err := New(fastCfg(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	dc.EnableMetrics(reg)
	dc.Start()
	t.Cleanup(dc.Stop)

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := dc.Append([]byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGCRunner(dc, time.Millisecond, 0)
	g.EnableMetrics(reg)
	g.Start()
	t.Cleanup(g.Stop)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if findValue(t, reg, "chariots_gc_frontier_lid", map[string]string{"dc": "0"}) >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if v := findValue(t, reg, "chariots_gc_frontier_lid", map[string]string{"dc": "0"}); v < n {
		t.Errorf("gc frontier = %v, want >= %d", v, n)
	}
	if v := findValue(t, reg, "chariots_gc_collected_total", map[string]string{"dc": "0"}); v == 0 {
		t.Error("gc collected = 0, want > 0")
	}
}
