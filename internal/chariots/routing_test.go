package chariots

import (
	"testing"

	"repro/internal/core"
)

func TestRoutingDefaultByHost(t *testing.T) {
	// 3 DCs over 3 filters: filter f champions host f.
	r, err := NewFilterRouting(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for h := core.DCID(0); h < 3; h++ {
		for toid := uint64(1); toid <= 10; toid++ {
			if got := r.Route(h, toid); got != int(h) {
				t.Fatalf("Route(%s,%d) = %d, want %d", h, toid, got, h)
			}
		}
	}
}

func TestRoutingFewerFiltersThanDCs(t *testing.T) {
	// 4 DCs over 2 filters: hosts 0,2 → filter 0; hosts 1,3 → filter 1.
	r, _ := NewFilterRouting(4, 2)
	cases := map[core.DCID]int{0: 0, 1: 1, 2: 0, 3: 1}
	for h, want := range cases {
		if got := r.Route(h, 5); got != want {
			t.Errorf("Route(%s) = %d, want %d", h, got, want)
		}
	}
}

func TestRoutingMoreFiltersThanDCs(t *testing.T) {
	// 2 DCs over 4 filters: host 0 splits across filters 0,2 by TOId
	// parity; host 1 across 1,3.
	r, _ := NewFilterRouting(2, 4)
	seen0 := map[int]bool{}
	for toid := uint64(1); toid <= 8; toid++ {
		f := r.Route(0, toid)
		if f != 0 && f != 2 {
			t.Fatalf("host 0 TOId %d routed to filter %d", toid, f)
		}
		seen0[f] = true
		// Determinism.
		if r.Route(0, toid) != f {
			t.Fatal("routing not deterministic")
		}
	}
	if len(seen0) != 2 {
		t.Errorf("host 0 records not split across 2 filters: %v", seen0)
	}
	for toid := uint64(1); toid <= 8; toid++ {
		f := r.Route(1, toid)
		if f != 1 && f != 3 {
			t.Fatalf("host 1 TOId %d routed to filter %d", toid, f)
		}
	}
}

func TestRoutingLocalRecordsSpread(t *testing.T) {
	r, _ := NewFilterRouting(1, 3)
	seen := map[int]bool{}
	for i := 0; i < 30; i++ {
		f := r.Route(0, 0)
		if f < 0 || f >= 3 {
			t.Fatalf("local route out of range: %d", f)
		}
		seen[f] = true
	}
	if len(seen) != 3 {
		t.Errorf("local records not spread: %v", seen)
	}
}

func TestRoutingFutureReassignment(t *testing.T) {
	r, _ := NewFilterRouting(2, 2)
	// Host 0 currently all on filter 0. Announce: from TOId 100, split
	// between filters 0 (odd-residue) and 1.
	if err := r.Reassign(0, 100, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Below the mark: unchanged.
	if got := r.Route(0, 99); got != 0 {
		t.Errorf("Route(0,99) = %d, want 0 (before mark)", got)
	}
	// At/after the mark: split by residue (toid mod 2 → index).
	if got := r.Route(0, 100); got != 0 {
		t.Errorf("Route(0,100) = %d, want 0", got)
	}
	if got := r.Route(0, 101); got != 1 {
		t.Errorf("Route(0,101) = %d, want 1", got)
	}
	// Backdated reassignment must fail.
	if err := r.Reassign(0, 50, []int{1}); err == nil {
		t.Error("backdated reassignment accepted")
	}
	// Bad filter index must fail.
	if err := r.Reassign(0, 200, []int{7}); err == nil {
		t.Error("out-of-range filter accepted")
	}
	if err := r.Reassign(0, 200, nil); err == nil {
		t.Error("empty filter list accepted")
	}
}

func TestRoutingChampionsOf(t *testing.T) {
	r, _ := NewFilterRouting(2, 4)
	// Host 0 is split across filters 0 and 2.
	res0 := r.ChampionsOf(0, 0, 1)
	res2 := r.ChampionsOf(2, 0, 1)
	if len(res0)+len(res2) != 2 {
		t.Errorf("residues of host 0 = %v + %v, want 2 total", res0, res2)
	}
	if got := r.ChampionsOf(1, 0, 1); got != nil {
		t.Errorf("filter 1 champions host 0 residues %v, want none", got)
	}
}

func TestRoutingGrowValidation(t *testing.T) {
	r, _ := NewFilterRouting(2, 2)
	if err := r.GrowFilters(1); err == nil {
		t.Error("shrink accepted")
	}
	if err := r.GrowFilters(3); err != nil {
		t.Errorf("grow failed: %v", err)
	}
	if err := r.Reassign(0, 10, []int{2}); err != nil {
		t.Errorf("reassign to grown filter failed: %v", err)
	}
	if got := r.Route(0, 11); got != 2 {
		t.Errorf("Route after grow = %d, want 2", got)
	}
}

func TestRoutingRejectsBadConfig(t *testing.T) {
	if _, err := NewFilterRouting(0, 1); err == nil {
		t.Error("0 DCs accepted")
	}
	if _, err := NewFilterRouting(1, 0); err == nil {
		t.Error("0 filters accepted")
	}
}
