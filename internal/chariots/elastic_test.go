package chariots

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

func TestElasticAddBatcherLive(t *testing.T) {
	dc := startDC(t, fastCfg(0, 1))
	for i := 0; i < 100; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("pre-%d", i)), nil)
	}
	nb := dc.AddBatcher(0)
	for i := 0; i < 100; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("post-%d", i)), nil)
	}
	if got := dc.Quiesce(50*time.Millisecond, 10*time.Second); got != 200 {
		t.Fatalf("applied %d, want 200", got)
	}
	if nb.Processed.Value() == 0 {
		t.Error("new batcher processed nothing (Inject round-robin should reach it)")
	}
	recs, _ := dc.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

func TestElasticAddQueueLive(t *testing.T) {
	cfg := fastCfg(0, 1)
	cfg.Queues = 1
	dc := startDC(t, cfg)
	for i := 0; i < 100; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("pre-%d", i)), nil)
	}
	nq, err := dc.AddQueue(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.AddQueue(99, 0); err == nil {
		t.Error("out-of-range AddQueue accepted")
	}
	for i := 0; i < 200; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("post-%d", i)), nil)
	}
	if got := dc.Quiesce(50*time.Millisecond, 10*time.Second); got != 300 {
		t.Fatalf("applied %d, want 300", got)
	}
	recs, _ := dc.LogRecords()
	if len(recs) != 300 {
		t.Fatalf("log has %d records", len(recs))
	}
	// Dense LIds even with two queues sharing the token.
	for i, r := range recs {
		if r.LId != uint64(i+1) {
			t.Fatalf("gap at %d: LId %d", i, r.LId)
		}
	}
	if nq.Applied.Value() == 0 {
		t.Error("new queue never applied records (token splice failed?)")
	}
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

func TestElasticAddFilterWithReassignment(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	// Phase 1: 100 records from A handled by B's original filters.
	for i := 0; i < 100; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("pre-%d", i)), nil)
	}
	if !b.WaitForTOId(0, 100, 10*time.Second) {
		t.Fatal("phase 1 did not replicate")
	}

	// Grow B's filter stage; reassign host A's records from TOId 151
	// to split across the old champion and the new filter. The margin
	// (current max 100 → mark 151) gives in-flight records time.
	oldChampion := b.Routing().Route(0, 100)
	nf, err := b.AddFilter(0)
	if err != nil {
		t.Fatal(err)
	}
	newIdx := len(b.filters) - 1
	if err := b.ReassignFilter(0, 151, []int{oldChampion, newIdx}); err != nil {
		t.Fatal(err)
	}

	// Phase 2: 100 more records from A; those with TOId >= 151 split.
	for i := 0; i < 100; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("post-%d", i)), nil)
	}
	if !b.WaitForTOId(0, 200, 10*time.Second) {
		t.Fatal("phase 2 did not replicate")
	}
	b.Quiesce(50*time.Millisecond, 5*time.Second)

	recs, _ := b.LogRecords()
	if len(recs) != 200 {
		t.Fatalf("B has %d records, want 200", len(recs))
	}
	if err := CheckCausalInvariant(recs); err != nil {
		t.Fatal(err)
	}
	if nf.Processed.Value() == 0 {
		t.Error("new filter championed nothing after reassignment")
	}
}

func TestElasticAddSenderLive(t *testing.T) {
	cfg := fastCfg(0, 2)
	// Throttle the original sender below the feed rate so the added
	// sender must participate (same determinism trick as
	// TestElasticSenderIndependence).
	cfg.Senders = 1
	cfg.SendThreshold = 8
	cfg.Rates.Sender = 20_000
	a := startDC(t, cfg)
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	ns := a.AddSender(20_000)
	ns.Connect(1, b.Receivers())
	const n = 2000
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("r%d", i)), nil)
	}
	if !b.WaitForTOId(0, n, 10*time.Second) {
		t.Fatal("replication with added sender failed")
	}
	if ns.Shipped.Value() == 0 {
		t.Error("new sender shipped nothing")
	}
	b.Quiesce(50*time.Millisecond, 5*time.Second)
	recs, _ := b.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
	if len(recs) != n {
		t.Errorf("B has %d records, want %d", len(recs), n)
	}
}

func TestElasticMaintainerEpochJournal(t *testing.T) {
	// Maintainer growth uses FLStore's epoch journal: verify a reader
	// can locate records across an epoch boundary. (The journal itself
	// is tested in flstore; this exercises the PlacementAt path end to
	// end through controller config.)
	dc := startDC(t, fastCfg(0, 1))
	for i := 0; i < 50; i++ {
		dc.AppendAsync([]byte(fmt.Sprintf("r%d", i)), nil)
	}
	dc.Quiesce(50*time.Millisecond, 10*time.Second)
	head, err := dc.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head < 40 {
		t.Fatalf("head = %d", head)
	}
	for lid := uint64(1); lid <= head; lid++ {
		if _, err := dc.Reader().ReadLId(lid); err != nil {
			t.Fatalf("ReadLId(%d): %v", lid, err)
		}
	}
}

// TestElasticSenderIndependence asserts the §6.3 claim that completely
// independent stages scale with zero coordination: two senders never share
// state, so their shipped counts sum to at least the record count (each
// record ships once per remote DC through exactly one sender).
func TestElasticSenderIndependence(t *testing.T) {
	cfg := fastCfg(0, 2)
	cfg.Senders = 3
	cfg.SendThreshold = 8 // small shipments so the feed is shared
	// Each sender alone is slower than the feed, so the others must
	// pick up records while it paces — participation is then
	// guaranteed, not a scheduling accident.
	cfg.Rates.Sender = 20_000
	a := startDC(t, cfg)
	b := startDC(t, fastCfg(1, 2))
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())
	const n = 3000
	for i := 0; i < n; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("r%d", i)), nil)
	}
	if !b.WaitForTOId(0, n, 10*time.Second) {
		t.Fatal("no convergence")
	}
	var total uint64
	active := 0
	for _, s := range a.senders {
		total += s.Shipped.Value()
		if s.Shipped.Value() > 0 {
			active++
		}
	}
	if total < n {
		t.Errorf("senders shipped %d total, want >= %d", total, n)
	}
	if active < 2 {
		t.Errorf("only %d senders active; feed sharing failed", active)
	}
	_ = core.DCID(0)
}
