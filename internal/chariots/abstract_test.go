package chariots

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestAbstractAppendAssignsTOIdsAndLIds(t *testing.T) {
	dc := NewAbstractDC(0, 2)
	r1 := dc.Append([]byte("a"), nil)
	r2 := dc.Append([]byte("b"), nil)
	if r1.TOId != 1 || r2.TOId != 2 {
		t.Errorf("TOIds = %d,%d", r1.TOId, r2.TOId)
	}
	if r1.LId != 1 || r2.LId != 2 {
		t.Errorf("LIds = %d,%d", r1.LId, r2.LId)
	}
	if got, _ := dc.Read(1); got != r1 {
		t.Error("Read(1) mismatch")
	}
	if _, err := dc.Read(3); err == nil {
		t.Error("Read past end accepted")
	}
	if _, err := dc.Read(0); err == nil {
		t.Error("Read(0) accepted")
	}
}

func TestAbstractSecondAppendDependsOnFirst(t *testing.T) {
	dc := NewAbstractDC(1, 2)
	dc.Append([]byte("a"), nil)
	r2 := dc.Append([]byte("b"), nil)
	if r2.DepOn(1) != 1 {
		t.Errorf("second append deps = %v, want dep on <DC1,1>", r2.Deps)
	}
}

func TestAbstractPropagateReceive(t *testing.T) {
	a := NewAbstractDC(0, 2)
	b := NewAbstractDC(1, 2)
	a.Append([]byte("x=10"), nil)
	a.Append([]byte("y=20"), nil)

	snap := a.Propagate(1)
	if len(snap.Records) != 2 {
		t.Fatalf("propagated %d records, want 2", len(snap.Records))
	}
	if err := b.Receive(snap); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("B has %d records, want 2", b.Len())
	}
	// Copies share (Host, TOId) but get B-local LIds.
	r, _ := b.Read(1)
	if r.Host != 0 || r.TOId != 1 || r.LId != 1 {
		t.Errorf("copy = %+v", r)
	}
	// B's table now knows A's records; propagate back teaches A that B
	// knows them (enabling GC).
	a.Receive(b.Propagate(0))
	if got := a.ATable().Get(1, 0); got != 2 {
		t.Errorf("A's T[B][A] = %d, want 2", got)
	}
	if a.GCSafePrefix() != 2 {
		t.Errorf("GC-safe prefix = %d, want 2", a.GCSafePrefix())
	}
}

func TestAbstractReceiveDedup(t *testing.T) {
	a := NewAbstractDC(0, 2)
	b := NewAbstractDC(1, 2)
	a.Append([]byte("only once"), nil)
	snap := a.Propagate(1)
	b.Receive(snap)
	b.Receive(snap) // duplicate delivery: exactly-once must hold
	if b.Len() != 1 {
		t.Errorf("B has %d records after duplicate delivery, want 1", b.Len())
	}
}

func TestAbstractReceiveOwnSnapshotRejected(t *testing.T) {
	a := NewAbstractDC(0, 2)
	if err := a.Receive(Snapshot{From: 0}); err == nil {
		t.Error("own snapshot accepted")
	}
}

func TestAbstractCausalDeferral(t *testing.T) {
	// B appends b1; A receives b1 and appends a1 (which depends on b1).
	// C receives a1 BEFORE b1: a1 must wait in the priority queue.
	a := NewAbstractDC(0, 3)
	b := NewAbstractDC(1, 3)
	c := NewAbstractDC(2, 3)

	b.Append([]byte("b1"), nil)
	a.Receive(b.Propagate(0))
	a.Append([]byte("a1"), nil) // depends on <B,1>

	// Deliver only A's record to C (simulating reordering).
	snapA := a.Propagate(2)
	var onlyA Snapshot
	onlyA.From = snapA.From
	onlyA.ATable = snapA.ATable
	for _, r := range snapA.Records {
		if r.Host == 0 {
			onlyA.Records = append(onlyA.Records, r)
		}
	}
	c.Receive(onlyA)
	if c.Len() != 0 {
		t.Fatalf("C applied a1 before its dependency; log len %d", c.Len())
	}
	if c.PendingLen() != 1 {
		t.Fatalf("PendingLen = %d, want 1", c.PendingLen())
	}
	// Now deliver b1; both must apply, in causal order.
	c.Receive(b.Propagate(2))
	if c.Len() != 2 {
		t.Fatalf("C has %d records, want 2", c.Len())
	}
	if err := CheckCausalInvariant(c.Log()); err != nil {
		t.Error(err)
	}
	first, _ := c.Read(1)
	if first.Host != 1 {
		t.Errorf("first applied record from %s, want DC1", first.Host)
	}
}

func TestAbstractTotalOrderPerHostEnforced(t *testing.T) {
	// Deliver host B's TOId 2 without TOId 1: it must wait.
	c := NewAbstractDC(0, 2)
	rec := &core.Record{Host: 1, TOId: 2, Body: []byte("gap")}
	c.Receive(Snapshot{From: 1, Records: []*core.Record{rec}})
	if c.Len() != 0 || c.PendingLen() != 1 {
		t.Fatalf("len=%d pending=%d, want 0/1", c.Len(), c.PendingLen())
	}
	c.Receive(Snapshot{From: 1, Records: []*core.Record{{Host: 1, TOId: 1, Body: []byte("first")}}})
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
}

// TestAbstractHyksosFigure2 reproduces the paper's Figure 2 scenario
// step by step: two datacenters, concurrent puts to x at both, then
// y=50 at A and z=60 at B, then full propagation.
func TestAbstractHyksosFigure2(t *testing.T) {
	A := NewAbstractDC(0, 2)
	B := NewAbstractDC(1, 2)

	// Time 1 setup: A appends x=30 after receiving B's x=10? The paper
	// has four initial records: x=10 and z=40 created at B; y=20 and
	// x=30 at A, with the x-writes concurrent (different order at A/B).
	A.Append([]byte("y=20"), []core.Tag{{Key: "key", Value: "y"}})
	A.Append([]byte("x=30"), []core.Tag{{Key: "key", Value: "x"}})
	B.Append([]byte("x=10"), []core.Tag{{Key: "key", Value: "x"}})
	B.Append([]byte("z=40"), []core.Tag{{Key: "key", Value: "z"}})
	A.Receive(B.Propagate(0))
	B.Receive(A.Propagate(1))

	// Concurrent x-writes may be ordered differently at A and B.
	lastX := func(dc *AbstractDC) string {
		for i := dc.Len(); i >= 1; i-- {
			r, _ := dc.Read(uint64(i))
			if v, ok := r.TagValue("key"); ok && v == "x" {
				return string(r.Body)
			}
		}
		return ""
	}
	if got := lastX(A); got != "x=10" {
		// A appended x=30 first, then received x=10 → latest is x=10.
		t.Errorf("at A latest x = %q", got)
	}
	if got := lastX(B); got != "x=30" {
		t.Errorf("at B latest x = %q", got)
	}

	// Time 2: new puts at each side.
	A.Append([]byte("y=50"), []core.Tag{{Key: "key", Value: "y"}})
	B.Append([]byte("z=60"), []core.Tag{{Key: "key", Value: "z"}})

	// Time 3: propagation both ways.
	A.Receive(B.Propagate(0))
	B.Receive(A.Propagate(1))
	if A.Len() != 6 || B.Len() != 6 {
		t.Fatalf("lens = %d,%d, want 6,6", A.Len(), B.Len())
	}
	for _, dc := range []*AbstractDC{A, B} {
		if err := CheckCausalInvariant(dc.Log()); err != nil {
			t.Errorf("%s: %v", dc.Self(), err)
		}
	}
}

// TestAbstractConvergenceProperty: under random append/propagate schedules,
// all datacenters converge to causally valid logs containing the same
// record set, with identical per-host subsequences.
func TestAbstractConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		dcs := make([]*AbstractDC, n)
		for i := range dcs {
			dcs[i] = NewAbstractDC(core.DCID(i), n)
		}
		for step := 0; step < 60; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				dcs[i].Append([]byte(fmt.Sprintf("r%d", step)), nil)
			default:
				j := rng.Intn(n)
				if j != i {
					dcs[j].Receive(dcs[i].Propagate(core.DCID(j)))
				}
			}
		}
		// Final full exchange until quiescence.
		for round := 0; round < n+1; round++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						dcs[j].Receive(dcs[i].Propagate(core.DCID(j)))
					}
				}
			}
		}
		want := dcs[0].Len()
		for _, dc := range dcs {
			if dc.Len() != want || dc.PendingLen() != 0 {
				return false
			}
			if err := CheckCausalInvariant(dc.Log()); err != nil {
				return false
			}
		}
		// Same record set everywhere.
		ids := func(dc *AbstractDC) map[core.GlobalID]bool {
			m := map[core.GlobalID]bool{}
			for _, r := range dc.Log() {
				m[r.ID()] = true
			}
			return m
		}
		base := ids(dcs[0])
		for _, dc := range dcs[1:] {
			other := ids(dc)
			if len(other) != len(base) {
				return false
			}
			for id := range base {
				if !other[id] {
					return false
				}
			}
		}
		// After quiescent full exchange every record is GC-safe.
		for _, dc := range dcs {
			if dc.GCSafePrefix() != dc.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckCausalInvariantDetectsViolations(t *testing.T) {
	// TOId gap.
	bad1 := []*core.Record{{Host: 0, TOId: 2}}
	if err := CheckCausalInvariant(bad1); err == nil {
		t.Error("TOId gap not detected")
	}
	// Unsatisfied dependency.
	bad2 := []*core.Record{
		{Host: 0, TOId: 1, Deps: []core.Dep{{DC: 1, TOId: 1}}},
	}
	if err := CheckCausalInvariant(bad2); err == nil {
		t.Error("unsatisfied dep not detected")
	}
	// Valid log.
	good := []*core.Record{
		{Host: 1, TOId: 1},
		{Host: 0, TOId: 1, Deps: []core.Dep{{DC: 1, TOId: 1}}},
		{Host: 0, TOId: 2},
	}
	if err := CheckCausalInvariant(good); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
}
