package chariots

import (
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
)

// Filter is one machine of the uniqueness stage (§6.2): it champions a
// slice of the record space (hosts, or TOId residue classes of a host —
// resolved by the shared FilterRouting) and guarantees exactly-once,
// in-total-order delivery of external records to the queues. For each
// championed host it tracks the next expected TOId; duplicates are dropped
// and early arrivals wait in a bounded reorder buffer. Filters never talk
// to each other.
type Filter struct {
	StageMachine
	index   int
	self    core.DCID
	in      chan []*core.Record
	routing *FilterRouting

	// queues may grow while the filter runs (AddQueue); guarded by
	// queueMu.
	queueMu sync.Mutex
	queues  []chan<- []*core.Record

	// last[h] is the highest TOId of host h this filter has forwarded;
	// the next expected TOId is derived from the routing (the smallest
	// TOId above last that routes here).
	last map[core.DCID]uint64
	// ahead buffers early arrivals per host, keyed by TOId.
	ahead    map[core.DCID]map[uint64]*core.Record
	maxAhead int
	rrQueue  uint64
	// stopC aborts downstream sends during shutdown.
	stopC <-chan struct{}
	// nic, when set, models the filter machine's shared network
	// interface: the batchers charge it to transmit records in
	// (Batcher.flush) and forward charges it to transmit records out.
	// Steady-state filter throughput is then nic/2, and when upstream
	// transmission ends the full NIC goes to egress — the abrupt
	// throughput increase the paper observes at the end of Figure 9.
	nic *ratelimit.Limiter

	// Dropped counts exact duplicates discarded (the exactly-once
	// guarantee at work); Overflow counts early arrivals discarded
	// because the reorder buffer was full (they will be re-shipped by
	// the sender's resync path).
	Dropped  metrics.Counter
	Overflow metrics.Counter
}

// NewFilter builds a filter machine.
func NewFilter(name string, limiter *ratelimit.Limiter, index int, self core.DCID, in chan []*core.Record, routing *FilterRouting, queues []chan<- []*core.Record, maxAhead int) *Filter {
	if maxAhead < 1 {
		maxAhead = 1 << 16
	}
	return &Filter{
		StageMachine: StageMachine{Name: name, Limiter: limiter},
		index:        index,
		self:         self,
		in:           in,
		queues:       queues,
		routing:      routing,
		last:         make(map[core.DCID]uint64),
		ahead:        make(map[core.DCID]map[uint64]*core.Record),
		maxAhead:     maxAhead,
	}
}

// In returns the filter's ingress channel.
func (f *Filter) In() chan []*core.Record { return f.in }

func (f *Filter) run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			for {
				select {
				case recs := <-f.in:
					f.process(recs)
				default:
					return
				}
			}
		case recs := <-f.in:
			f.process(recs)
		}
	}
}

// nextExpected returns the smallest TOId of host greater than f.last[host]
// that routes to this filter.
func (f *Filter) nextExpected(host core.DCID) uint64 {
	t := f.last[host] + 1
	for f.routing.Route(host, t) != f.index {
		t++
	}
	return t
}

// process applies exactly-once, in-order championing to one batch and
// forwards the survivors to a queue.
func (f *Filter) process(recs []*core.Record) {
	if len(recs) == 0 {
		return
	}
	f.work(len(recs))
	var out []*core.Record
	for _, r := range recs {
		if r.TOId == 0 {
			// A fresh local record: no total-order id yet, nothing
			// to deduplicate — the queue will number it.
			out = append(out, r)
			continue
		}
		out = f.champion(r, out)
	}
	f.forward(out)
}

// champion runs the §6.2 uniqueness protocol for one external record.
func (f *Filter) champion(r *core.Record, out []*core.Record) []*core.Record {
	host := r.Host
	expected := f.nextExpected(host)
	switch {
	case r.TOId < expected:
		f.Dropped.Inc()
	case r.TOId == expected:
		out = append(out, r)
		f.last[host] = r.TOId
		// Release any buffered successors that are now in order.
		for {
			next := f.nextExpected(host)
			buf := f.ahead[host]
			rec, ok := buf[next]
			if !ok {
				break
			}
			delete(buf, next)
			out = append(out, rec)
			f.last[host] = next
		}
	default: // early arrival
		buf := f.ahead[host]
		if buf == nil {
			buf = make(map[uint64]*core.Record)
			f.ahead[host] = buf
		}
		if _, dup := buf[r.TOId]; dup {
			f.Dropped.Inc()
			break
		}
		if len(buf) >= f.maxAhead {
			f.Overflow.Inc()
			break
		}
		buf[r.TOId] = r
	}
	return out
}

// forward round-robins the batch to one of the queues ("sent to one of the
// Queues" — any queue can receive any record).
func (f *Filter) forward(out []*core.Record) {
	if len(out) == 0 {
		return
	}
	// The pipe.filter span covers batcher→filter transit plus championing
	// (including any reorder-buffer wait for early arrivals).
	hopRecords(out, "pipe.filter")
	f.queueMu.Lock()
	q := f.queues[int(f.rrQueue%uint64(len(f.queues)))]
	f.rrQueue++
	f.queueMu.Unlock()
	if f.stopC == nil {
		q <- out
	} else {
		select {
		case q <- out:
		case <-f.stopC:
			return
		}
	}
	f.nic.WaitN(len(out))
}

// addQueue publishes a new queue inbox to a (possibly running) filter.
func (f *Filter) addQueue(in chan<- []*core.Record) {
	f.queueMu.Lock()
	f.queues = append(f.queues, in)
	f.queueMu.Unlock()
}

// seedLast primes the filter's championship counter for a host: records
// with TOId ≤ toid are treated as already delivered. Restarting
// datacenters seed their filters from the log-recovered applied vector so
// resynced records (which begin after the recovered prefix) are not
// parked waiting for TOIds the log already holds. Must be called before
// the filter starts.
func (f *Filter) seedLast(host core.DCID, toid uint64) {
	if toid > f.last[host] {
		f.last[host] = toid
	}
}

// AheadLen returns the number of buffered early arrivals (introspection).
func (f *Filter) AheadLen() int {
	n := 0
	for _, buf := range f.ahead {
		n += len(buf)
	}
	return n
}
