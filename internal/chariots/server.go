package chariots

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Message types of the Chariots wire protocol (cross-datacenter shipping
// and client ingestion). FLStore's types occupy 1..11; these start higher
// so one server can host both if a deployment co-locates them.
const (
	msgReplicate uint8 = iota + 32
	msgIngest
	msgApplied
)

func appendSnapshot(dst []byte, snap Snapshot) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(snap.From))
	dst = core.AppendRecords(dst, snap.Records)
	var hasTable byte
	if snap.ATable != nil {
		hasTable = 1
	}
	dst = append(dst, hasTable)
	if snap.ATable != nil {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(snap.ATable)))
		for _, row := range snap.ATable {
			dst = row.AppendBinary(dst)
		}
	}
	return dst
}

func decodeSnapshot(buf []byte) (Snapshot, error) {
	var snap Snapshot
	if len(buf) < 2 {
		return snap, errors.New("chariots: short snapshot")
	}
	snap.From = core.DCID(binary.LittleEndian.Uint16(buf))
	recs, used, err := core.DecodeRecordsShared(buf[2:])
	if err != nil {
		return snap, err
	}
	snap.Records = recs
	// Arena-decoded records belong to this snapshot alone: the receiver
	// may adopt them without another clone.
	snap.Owned = true
	off := 2 + used
	if len(buf) < off+1 {
		return snap, errors.New("chariots: short snapshot table flag")
	}
	if buf[off] == 1 {
		off++
		if len(buf) < off+2 {
			return snap, errors.New("chariots: short snapshot table")
		}
		n := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		snap.ATable = make([]vclock.Vector, n)
		for i := 0; i < n; i++ {
			v, used, err := vclock.DecodeVector(buf[off:])
			if err != nil {
				return snap, err
			}
			snap.ATable[i] = v
			off += used
		}
	}
	return snap, nil
}

// ServeReceiver registers the cross-datacenter replication handler on srv,
// delivering decoded snapshots to rx. One RPC server typically fronts one
// receiver machine.
func ServeReceiver(srv *rpc.Server, rx ReceiverAPI) {
	srv.Handle(msgReplicate, func(p []byte) ([]byte, error) {
		snap, err := decodeSnapshot(p)
		if err != nil {
			return nil, err
		}
		return nil, rx.Deliver(snap)
	})
}

// receiverClient implements ReceiverAPI over an rpc.Client — the transport
// a sender uses toward a remote datacenter's receiver machine.
type receiverClient struct{ c rpc.Client }

// NewReceiverClient wraps an RPC client as a ReceiverAPI.
func NewReceiverClient(c rpc.Client) ReceiverAPI { return &receiverClient{c: c} }

func (rc *receiverClient) Deliver(snap Snapshot) error {
	req := wire.GetBuf()
	*req = appendSnapshot(*req, snap)
	_, err := rc.c.Call(msgReplicate, *req)
	wire.PutBuf(req)
	return err
}

// ServeIngest registers the application-client ingestion handler on srv:
// remote clients append batches of fresh records (no TOId/LId) which are
// injected into the pipeline. The response carries no ids — over-the-wire
// appends are fire-and-forget into the pipeline (§6.2's Application
// clients "send it to any Batcher machine"); clients needing ids use the
// in-process API or poll msgApplied. Under Config.ShedOnSaturation a
// saturated pipeline rejects the batch with a SaturationError (the rpc
// layer ships the retry hint; IngestClient reconstructs the type).
func ServeIngest(srv *rpc.Server, dc *Datacenter) {
	srv.Handle(msgIngest, func(p []byte) ([]byte, error) {
		recs, _, err := core.DecodeRecordsShared(p)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.TOId != 0 || r.LId != 0 {
				return nil, fmt.Errorf("chariots: ingest record carries ids (TOId=%d LId=%d)", r.TOId, r.LId)
			}
			r.Host = dc.Self()
		}
		return nil, dc.inject(recs, dc.cfg.ShedOnSaturation)
	})
	srv.Handle(msgApplied, func(p []byte) ([]byte, error) {
		return dc.Applied().AppendBinary(nil), nil
	})
}

// IngestClient is the remote application-client handle: it appends records
// to a datacenter over TCP.
type IngestClient struct{ c rpc.Client }

// NewIngestClient wraps an RPC client as an ingestion handle.
func NewIngestClient(c rpc.Client) *IngestClient { return &IngestClient{c: c} }

// Append ships fresh records into the remote pipeline. A saturated remote
// under the shed policy returns a *SaturationError (retryable, with the
// server's retry hint reconstructed from the wire).
func (ic *IngestClient) Append(recs []*core.Record) error {
	req := wire.GetBuf()
	*req = core.AppendRecords(*req, recs)
	_, err := ic.c.Call(msgIngest, *req)
	wire.PutBuf(req)
	return mapIngestError(err)
}

// mapIngestError reconstructs this package's typed errors from the flat
// strings the rpc layer transports (same convention as flstore's
// mapRemoteError).
func mapIngestError(err error) error {
	if err == nil || !rpc.IsRemote(err) {
		return err
	}
	msg := err.Error()
	if strings.Contains(msg, ErrPipelineSaturated.Error()) {
		var h interface{ RetryAfterHint() time.Duration }
		hint := time.Duration(0)
		if errors.As(err, &h) {
			hint = h.RetryAfterHint()
		}
		return &SaturationError{RetryAfter: hint}
	}
	if strings.Contains(msg, ErrStopped.Error()) {
		return ErrStopped
	}
	return err
}

// Applied returns the remote datacenter's applied-TOId vector (polling
// surface for clients that need to confirm their appends landed).
func (ic *IngestClient) Applied() (vclock.Vector, error) {
	resp, err := ic.c.Call(msgApplied, nil)
	if err != nil {
		return nil, err
	}
	v, _, err := vclock.DecodeVector(resp)
	return v, err
}

// Resync re-ships this datacenter's local records that, per the awareness
// table, the remote datacenter has not acknowledged — the recovery path
// after a receiver failure, dropped link, or filter-reorder overflow. It
// scans the log maintainers (senders normally consume the live feed; the
// scan is the slow path) and sends one snapshot through the given sender.
func (dc *Datacenter) Resync(remote core.DCID, s *Sender) (int, error) {
	known := dc.state.atable.Get(remote, dc.cfg.Self)
	var stale []*core.Record
	for _, m := range dc.maintainers {
		recs, err := m.Scan(core.Rule{HasHost: true, Host: dc.cfg.Self, MinTOId: known + 1})
		if err != nil {
			return 0, err
		}
		stale = append(stale, recs...)
	}
	if len(stale) == 0 {
		return 0, nil
	}
	// Ship in TOId order so the remote filter sees its expected
	// sequence.
	sortRecordsByTOId(stale)
	copies := make([]*core.Record, len(stale))
	for i, r := range stale {
		copies[i] = r.Clone()
	}
	snap := Snapshot{From: dc.cfg.Self, Records: copies, ATable: dc.state.atable.Snapshot(), Owned: true}
	s.mu.Lock()
	rxs := s.dests[remote]
	s.mu.Unlock()
	if len(rxs) == 0 {
		return 0, fmt.Errorf("chariots: no receivers connected for %s", remote)
	}
	if err := rxs[0].Deliver(snap); err != nil {
		return 0, err
	}
	return len(copies), nil
}

// ResyncAll ships every local record to the remote datacenter regardless
// of the awareness table — the bootstrap path for a *replacement*
// datacenter that lost its entire state: the peers' tables still remember
// what the dead instance knew, so the incremental Resync would skip
// records the new instance never had. The remote's filters discard
// whatever it does turn out to have (exactly-once), so over-shipping is
// safe, just expensive.
func (dc *Datacenter) ResyncAll(remote core.DCID, s *Sender) (int, error) {
	var all []*core.Record
	for _, m := range dc.maintainers {
		recs, err := m.Scan(core.Rule{HasHost: true, Host: dc.cfg.Self})
		if err != nil {
			return 0, err
		}
		all = append(all, recs...)
	}
	if len(all) == 0 {
		return 0, nil
	}
	sortRecordsByTOId(all)
	copies := make([]*core.Record, len(all))
	for i, r := range all {
		copies[i] = r.Clone()
	}
	snap := Snapshot{From: dc.cfg.Self, Records: copies, ATable: dc.state.atable.Snapshot(), Owned: true}
	s.mu.Lock()
	rxs := s.dests[remote]
	s.mu.Unlock()
	if len(rxs) == 0 {
		return 0, fmt.Errorf("chariots: no receivers connected for %s", remote)
	}
	if err := rxs[0].Deliver(snap); err != nil {
		return 0, err
	}
	return len(copies), nil
}

func sortRecordsByTOId(recs []*core.Record) {
	// Insertion sort is fine: resync batches are small and mostly sorted
	// (scan returns LId order, which for a single host tracks TOId).
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1].TOId > recs[j].TOId; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
}
