package chariots

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// GCState holds the datacenter's garbage-collection cursor.
type GCState struct {
	mu       sync.Mutex
	frontier uint64 // highest LId whose prefix has been collected
}

// CollectGarbage applies the §6.1 rule: a record may be dropped only once
// every datacenter is known (per the Awareness Table) to have its host's
// records up to its TOId — on top of which deployments layer their own
// temporal/spatial policies. It releases the longest GC-safe log prefix to
// the maintainers' stores and returns how many records were removed and
// the new prefix frontier (an LId).
//
// keepAfter, when nonzero, caps collection below that LId regardless of
// safety (the "system designer rule": e.g. retain the most recent N
// positions for readers).
func (dc *Datacenter) CollectGarbage(gcs *GCState, keepAfter uint64) (int, uint64, error) {
	gcs.mu.Lock()
	defer gcs.mu.Unlock()

	head, err := dc.reader.HeadExact()
	if err != nil {
		return 0, gcs.frontier, err
	}
	limit := head
	if keepAfter != 0 && keepAfter-1 < limit {
		limit = keepAfter - 1
	}
	if limit <= gcs.frontier {
		return 0, gcs.frontier, nil
	}

	// Walk the candidate window in LId order and extend the safe prefix.
	var window []*core.Record
	for _, m := range dc.maintainers {
		recs, err := m.Scan(core.Rule{MinLId: gcs.frontier + 1, MaxLId: limit})
		if err != nil {
			return 0, gcs.frontier, err
		}
		window = append(window, recs...)
	}
	byLId := make(map[uint64]*core.Record, len(window))
	for _, r := range window {
		byLId[r.LId] = r
	}
	newFrontier := gcs.frontier
	for lid := gcs.frontier + 1; lid <= limit; lid++ {
		rec, ok := byLId[lid]
		if !ok || !dc.state.atable.GCSafe(rec.Host, rec.TOId) {
			break
		}
		newFrontier = lid
	}
	if newFrontier == gcs.frontier {
		return 0, gcs.frontier, nil
	}

	removed := 0
	for _, m := range dc.maintainers {
		n, err := m.Store().GC(newFrontier)
		if err != nil {
			return removed, gcs.frontier, err
		}
		removed += n
	}
	gcs.frontier = newFrontier
	return removed, newFrontier, nil
}

// GCRunner periodically applies CollectGarbage — the background reclaim
// loop a long-running deployment pairs with the §6.1 rule. KeepAfter, when
// nonzero, always retains positions at or above it (the "system designer
// rule" for readers that lag).
type GCRunner struct {
	dc        *Datacenter
	state     GCState
	interval  time.Duration
	keepAfter uint64
	stop      chan struct{}
	done      chan struct{}

	// Collected counts records reclaimed over the runner's lifetime.
	Collected metrics.Counter
}

// NewGCRunner builds (but does not start) a runner.
func NewGCRunner(dc *Datacenter, interval time.Duration, keepAfter uint64) *GCRunner {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &GCRunner{
		dc:        dc,
		interval:  interval,
		keepAfter: keepAfter,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the reclaim loop.
func (g *GCRunner) Start() {
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(g.interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				if n, _, err := g.dc.CollectGarbage(&g.state, g.keepAfter); err == nil {
					g.Collected.Add(uint64(n))
				}
			}
		}
	}()
}

// Stop halts the loop and waits for it.
func (g *GCRunner) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}

// Frontier returns the highest LId whose prefix has been reclaimed.
func (g *GCRunner) Frontier() uint64 {
	g.state.mu.Lock()
	defer g.state.mu.Unlock()
	return g.state.frontier
}
