package chariots

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// BenchmarkPipelineRawThroughput measures the unlimited (no capacity
// model) end-to-end pipeline: how many records per second this Go
// implementation pushes from Inject to applied-in-FLStore on the host.
func BenchmarkPipelineRawThroughput(b *testing.B) {
	dc, err := New(Config{
		Self:           0,
		NumDCs:         1,
		Batchers:       1,
		Filters:        1,
		Queues:         1,
		Maintainers:    2,
		FlushThreshold: 256,
		FlushInterval:  time.Millisecond,
		TokenIdleWait:  50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()

	body := workload.NewBody(512, 1)
	const batch = 256
	b.ReportAllocs()
	b.SetBytes(512)
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n := batch
		if b.N-sent < n {
			n = b.N - sent
		}
		recs := make([]*core.Record, n)
		for j := range recs {
			recs[j] = &core.Record{Host: 0, Body: body}
		}
		dc.Inject(recs)
		sent += n
	}
	// Count only fully applied records in the timing window.
	deadline := time.Now().Add(time.Minute)
	for dc.AppliedCount() < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("applied %d of %d", dc.AppliedCount(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkAppendAckLatency measures one synchronous Append through the
// whole pipeline (ordering latency, not throughput).
func BenchmarkAppendAckLatency(b *testing.B) {
	dc, err := New(Config{
		Self:           0,
		NumDCs:         1,
		FlushThreshold: 1,
		FlushInterval:  100 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	body := workload.NewBody(512, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.Append(body, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbstractReceive measures the reference implementation's
// reception path (dedup + causal ordering + apply).
func BenchmarkAbstractReceive(b *testing.B) {
	src := NewAbstractDC(1, 2)
	for i := 0; i < 1000; i++ {
		src.Append([]byte("r"), nil)
	}
	snap := src.Propagate(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewAbstractDC(0, 2)
		if err := dst.Receive(snap); err != nil {
			b.Fatal(err)
		}
		if dst.Len() != 1000 {
			b.Fatal("not all applied")
		}
	}
}

// BenchmarkFilterChampion measures the exactly-once filter per record.
func BenchmarkFilterChampion(b *testing.B) {
	routing, _ := NewFilterRouting(2, 1)
	out := make(chan []*core.Record, 1)
	f := NewFilter("Filter", nil, 0, 0, make(chan []*core.Record), routing, []chan<- []*core.Record{out}, 0)
	go func() {
		for range out {
		}
	}()
	defer close(out)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.process([]*core.Record{{Host: 1, TOId: uint64(i + 1)}})
	}
}
