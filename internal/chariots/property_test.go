package chariots

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// TestFilterExactlyOnceProperty feeds a filter a stream with random
// duplication and reordering and asserts the output is the host's exact
// total order, each record exactly once — the §6.2 uniqueness guarantee.
func TestFilterExactlyOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		routing, _ := NewFilterRouting(2, 1)
		out := make(chan []*core.Record, 1024)
		fl := NewFilter("Filter", nil, 0, 0, make(chan []*core.Record, 16), routing, []chan<- []*core.Record{out}, 0)

		const n = 60
		// Build a delivery schedule: every TOId 1..n appears 1-3
		// times, shuffled within a bounded reorder window.
		var schedule []uint64
		for toid := uint64(1); toid <= n; toid++ {
			for c := 0; c < 1+rng.Intn(3); c++ {
				schedule = append(schedule, toid)
			}
		}
		// Bounded shuffle: swap within window 8.
		for i := range schedule {
			j := i + rng.Intn(8)
			if j < len(schedule) {
				schedule[i], schedule[j] = schedule[j], schedule[i]
			}
		}
		for _, toid := range schedule {
			fl.process([]*core.Record{{Host: 1, TOId: toid, Body: []byte(fmt.Sprint(toid))}})
		}
		// Collect output.
		close(out)
		var got []uint64
		for batch := range out {
			for _, r := range batch {
				got = append(got, r.TOId)
			}
		}
		if len(got) != n {
			return false
		}
		for i, toid := range got {
			if toid != uint64(i+1) {
				return false
			}
		}
		return fl.AheadLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQueueApplyMatchesAbstractProperty: for random record sets, the
// queue's token-based apply admits exactly the records the abstract
// solution's applicability rule admits, with identical resulting applied
// vectors.
func TestQueueApplyMatchesAbstractProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nDCs = 3

		// Random external records: per remote host, a prefix of its
		// total order is "available"; each record's deps reference
		// random other hosts.
		var work []*core.Record
		for host := core.DCID(1); host < nDCs; host++ {
			avail := rng.Intn(6)
			perm := rng.Perm(avail)
			for _, i := range perm {
				rec := &core.Record{Host: host, TOId: uint64(i + 1)}
				// Random dependency on the other remote host.
				other := core.DCID(1 + (int(host))%(nDCs-1))
				if other != host && rng.Intn(2) == 0 {
					rec.Deps = []core.Dep{{DC: other, TOId: uint64(rng.Intn(4))}}
				}
				work = append(work, rec)
			}
		}

		// Abstract: drain via the reference priority queue.
		abs := NewAbstractDC(0, nDCs)
		var absIn []*core.Record
		for _, r := range work {
			absIn = append(absIn, r.Clone())
		}
		abs.Receive(Snapshot{From: 1, Records: absIn})

		// Distributed: a queue with a fresh token applying the same
		// records directly.
		state := newDCState(0, nDCs, 4)
		p := flstore.Placement{NumMaintainers: 1, BatchSize: 100}
		m, _ := flstore.NewMaintainer(flstore.MaintainerConfig{Index: 0, Placement: p})
		q := NewQueue("Queue", nil, 0, state, make(chan []*core.Record, 1), p,
			[]flstore.MaintainerAPI{m}, false, time.Millisecond)
		tok := NewToken(nDCs)
		var qIn []*core.Record
		for _, r := range work {
			qIn = append(qIn, r.Clone())
		}
		outs := []chan []*core.Record{make(chan []*core.Record, 1024)}
		applied, leftover := q.apply(tok, qIn, outs, nil)

		if applied != abs.Len() {
			return false
		}
		// Applied vectors agree.
		absVec := abs.ATable().SelfVector()
		for i := 0; i < nDCs; i++ {
			if tok.Applied.Get(core.DCID(i)) != absVec.Get(core.DCID(i)) {
				return false
			}
		}
		return len(leftover) == abs.PendingLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestATableConvergenceProperty: shipping tables in random directions
// converges every datacenter's table to the elementwise maximum.
func TestATableConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		tables := make([]*vclock.ATable, n)
		for i := range tables {
			tables[i] = vclock.NewATable(core.DCID(i), n)
			for c := 0; c < n; c++ {
				tables[i].Advance(core.DCID(i), core.DCID(c), uint64(rng.Intn(50)))
			}
		}
		// Random gossip rounds, then a full exchange.
		for step := 0; step < 10; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				tables[j].MergeSnapshot(tables[i].Snapshot())
			}
		}
		for round := 0; round < n; round++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						tables[j].MergeSnapshot(tables[i].Snapshot())
					}
				}
			}
		}
		// All tables identical.
		base := tables[0].Snapshot()
		for _, tb := range tables[1:] {
			snap := tb.Snapshot()
			for r := range base {
				for c := range base[r] {
					if snap[r][c] != base[r][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWholeDatacenterFailureAndRecovery is the §1 availability claim: when
// a datacenter dies, the surviving ones keep appending and replicating
// among themselves; when it returns (empty — total loss) peers resync it
// to the full causal log.
func TestWholeDatacenterFailureAndRecovery(t *testing.T) {
	a := startDC(t, fastCfg(0, 3))
	b := startDC(t, fastCfg(1, 3))
	c := startDC(t, fastCfg(2, 3)) // the one that will "fail"
	wire := func(from, to *Datacenter) { from.ConnectTo(to.Self(), to.Receivers()) }
	wire(a, b)
	wire(b, a)
	wire(a, c)
	wire(c, a)
	wire(b, c)
	wire(c, b)

	// Phase 1: all three alive.
	for i := 0; i < 20; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a-pre-%d", i)), nil)
	}
	if !c.WaitForTOId(0, 20, 10*time.Second) {
		t.Fatal("phase 1 replication failed")
	}

	// Phase 2: C fails. A and B keep working (availability under
	// partition — the CAP stance of §1).
	c.Stop()
	for i := 0; i < 30; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a-post-%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b-post-%d", i)), nil)
	}
	if !a.WaitForTOId(1, 30, 10*time.Second) || !b.WaitForTOId(0, 50, 10*time.Second) {
		t.Fatal("survivors stalled during C's outage")
	}

	// Phase 3: C returns as a fresh instance (total state loss). The
	// survivors resync it from their logs.
	c2 := startDC(t, fastCfg(2, 3))
	wire(a, c2)
	wire(b, c2)
	wire(c2, a)
	wire(c2, b)
	// The survivors' awareness tables still remember what the dead C
	// knew, so the incremental Resync would skip records 1..20; a
	// replacement instance bootstraps with ResyncAll.
	if _, err := a.ResyncAll(2, a.Senders()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ResyncAll(2, b.Senders()[0]); err != nil {
		t.Fatal(err)
	}
	if !c2.WaitForTOId(0, 50, 10*time.Second) || !c2.WaitForTOId(1, 30, 10*time.Second) {
		t.Fatalf("recovered DC never caught up: applied %v", c2.Applied())
	}
	c2.Quiesce(30*time.Millisecond, 5*time.Second)
	recs, err := c2.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 80 {
		t.Errorf("recovered DC has %d records, want 80", len(recs))
	}
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}

// TestDatacenterRecoversFromPersistentLog is the paper's intended recovery
// path: a datacenter restarts with its persistent log (here: the same
// backing stores) and rebuilds its ordering state — applied vector, next
// LId, awareness self-row — from the records themselves, then catches up
// incrementally via Resync.
func TestDatacenterRecoversFromPersistentLog(t *testing.T) {
	a := startDC(t, fastCfg(0, 2))

	// B gets explicit stores so a second instance can reopen them.
	cfgB := fastCfg(1, 2)
	cfgB.Maintainers = 3
	stores := make([]storage.Store, cfgB.Maintainers)
	for i := range stores {
		stores[i] = storage.NewMemStore()
	}
	cfgB.Stores = stores
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	for i := 0; i < 25; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a%d", i)), nil)
		b.AppendAsync([]byte(fmt.Sprintf("b%d", i)), nil)
	}
	if !b.WaitForTOId(0, 25, 10*time.Second) || !a.WaitForTOId(1, 25, 10*time.Second) {
		t.Fatal("initial replication failed")
	}
	b.Quiesce(30*time.Millisecond, 5*time.Second)
	preCrash, _ := b.LogRecords()
	b.Stop() // crash

	// More activity at A while B is down.
	for i := 0; i < 15; i++ {
		a.AppendAsync([]byte(fmt.Sprintf("a-down-%d", i)), nil)
	}
	if !a.WaitForTOId(0, 40, 10*time.Second) {
		t.Fatal("A stalled during B outage")
	}

	// B restarts over the same stores.
	b2, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	b2.Start()
	t.Cleanup(b2.Stop)
	// Recovered ordering state matches the pre-crash log.
	if got := b2.Applied(); got.Get(0) < 25 || got.Get(1) < 25 {
		t.Fatalf("recovered applied vector %v, want >= [25 25]", got)
	}
	rec0, _ := b2.LogRecords()
	if len(rec0) != len(preCrash) {
		t.Fatalf("recovered %d records, had %d", len(rec0), len(preCrash))
	}

	// Reconnect; incremental resync delivers only the missed records.
	a.ConnectTo(1, b2.Receivers())
	b2.ConnectTo(0, a.Receivers())
	sent, err := a.Resync(1, a.Senders()[0])
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 || sent > 20 {
		t.Errorf("incremental resync shipped %d records, want ≈15", sent)
	}
	if !b2.WaitForTOId(0, 40, 10*time.Second) {
		t.Fatal("B never caught up after restart")
	}
	// New local appends at B2 continue its own total order without
	// reusing TOIds.
	ack, err := b2.Append([]byte("post-restart"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.TOId != 26 {
		t.Errorf("post-restart TOId = %d, want 26", ack.TOId)
	}
	b2.Quiesce(30*time.Millisecond, 5*time.Second)
	recs, _ := b2.LogRecords()
	if err := CheckCausalInvariant(recs); err != nil {
		t.Error(err)
	}
}
