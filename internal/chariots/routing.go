package chariots

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// FilterRouting decides which filter champions each record (§6.2): by
// default records are partitioned by host datacenter (filter = host mod
// numFilters); when there are more filters than datacenters, a host's
// records are split by TOId residue classes.
//
// It also implements the *future reassignment* of §6.3: a reassignment is
// announced for TOIds at or beyond a future mark, giving batchers time to
// learn the hand-over before any affected record exists. Routing is
// deterministic from (host, TOId), so every batcher resolves the same
// filter without coordination.
type FilterRouting struct {
	mu    sync.RWMutex
	rules map[core.DCID][]routingRule
	// local is the filter index for not-yet-numbered local records
	// (TOId 0); they are deduplicated nowhere, so any filter works, but
	// a deterministic choice keeps the pipeline debuggable. Balance for
	// hot local traffic comes from assigning by round-robin counter.
	numFilters int
	rrLocal    uint64
}

// routingRule: records of a host with TOId in [fromTOId, nextFrom) route by
// (TOId mod modulus == residue[i] → filter[i]).
type routingRule struct {
	fromTOId uint64
	modulus  uint64
	filters  []int // indexed by residue (TOId mod modulus)
}

// NewFilterRouting builds the default championship map of §6.2 for n
// datacenters over k filters: filter f champions every host h with
// h mod k == f (k ≤ n), or host h's records are split across the
// ⌈k/n⌉ filters {h, h+n, h+2n, ...} by TOId residue (k > n).
func NewFilterRouting(numDCs, numFilters int) (*FilterRouting, error) {
	if numDCs < 1 || numFilters < 1 {
		return nil, errors.New("chariots: routing needs >=1 DC and filter")
	}
	r := &FilterRouting{rules: make(map[core.DCID][]routingRule), numFilters: numFilters}
	for h := 0; h < numDCs; h++ {
		var filters []int
		for f := h % numFilters; f < numFilters; f += numDCs {
			filters = append(filters, f)
		}
		if len(filters) == 0 {
			filters = []int{h % numFilters}
		}
		r.rules[core.DCID(h)] = []routingRule{{
			fromTOId: 1,
			modulus:  uint64(len(filters)),
			filters:  filters,
		}}
	}
	return r, nil
}

// Route returns the filter index championing (host, toid). TOId 0 (a local
// record not yet numbered) is spread round-robin.
func (r *FilterRouting) Route(host core.DCID, toid uint64) int {
	if toid == 0 {
		r.mu.Lock()
		r.rrLocal++
		f := int(r.rrLocal % uint64(r.numFilters))
		r.mu.Unlock()
		return f
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	rules := r.rules[host]
	// Find the last rule whose fromTOId <= toid.
	for i := len(rules) - 1; i >= 0; i-- {
		if rules[i].fromTOId <= toid {
			rule := rules[i]
			return rule.filters[toid%rule.modulus]
		}
	}
	// No rule (host unknown): fall back to host mod filters.
	return int(uint64(host) % uint64(r.numFilters))
}

// Reassign announces a future reassignment (§6.3): from fromTOId onward,
// host's records are split across the given filters by TOId residue.
// fromTOId must be beyond every existing mark for that host.
func (r *FilterRouting) Reassign(host core.DCID, fromTOId uint64, filters []int) error {
	if len(filters) == 0 {
		return errors.New("chariots: reassignment needs at least one filter")
	}
	for _, f := range filters {
		if f < 0 || f >= r.numFilters {
			return fmt.Errorf("chariots: filter %d out of range [0,%d)", f, r.numFilters)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rules := r.rules[host]
	if len(rules) > 0 && fromTOId <= rules[len(rules)-1].fromTOId {
		return fmt.Errorf("chariots: reassignment mark %d not in the future (last %d)",
			fromTOId, rules[len(rules)-1].fromTOId)
	}
	r.rules[host] = append(rules, routingRule{
		fromTOId: fromTOId,
		modulus:  uint64(len(filters)),
		filters:  filters,
	})
	return nil
}

// GrowFilters raises the filter count (new filters take traffic only once
// a Reassign names them).
func (r *FilterRouting) GrowFilters(newCount int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if newCount < r.numFilters {
		return fmt.Errorf("chariots: cannot shrink filters %d -> %d", r.numFilters, newCount)
	}
	r.numFilters = newCount
	return nil
}

// ChampionsOf returns which residues of host's TOIds a filter currently
// champions at the given TOId horizon (introspection for tests).
func (r *FilterRouting) ChampionsOf(filter int, host core.DCID, atTOId uint64) []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rules := r.rules[host]
	for i := len(rules) - 1; i >= 0; i-- {
		if rules[i].fromTOId <= atTOId {
			var residues []uint64
			for res, f := range rules[i].filters {
				if f == filter {
					residues = append(residues, uint64(res))
				}
			}
			return residues
		}
	}
	return nil
}
