package chariots

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/ratelimit"
)

// Live elasticity (§6.3). Completely independent stages (receivers,
// batchers, senders) are grown by constructing another machine and
// advertising it to the stage above; filters and maintainers champion
// record subsets and therefore use *future reassignment* (FilterRouting.
// Reassign, flstore's epoch journal); queues join the token ring.

// AddBatcher grows the batching stage by one machine while the pipeline
// runs. Receivers and future Inject calls start using it immediately.
func (dc *Datacenter) AddBatcher(rate float64) *Batcher {
	in := make(chan []*core.Record, depthFor(dc.cfg.ChannelDepth, dc.cfg.FlushThreshold))
	var filterIns []chan<- []*core.Record
	for _, f := range dc.filters {
		filterIns = append(filterIns, f.In())
	}
	dc.startMu.Lock()
	name := machineName("Batcher", len(dc.batchers), len(dc.batchers)+2)
	b := NewBatcher(name, ratelimit.New(rate, 64), in, dc.routing, filterIns,
		dc.cfg.FlushThreshold, dc.cfg.FlushInterval)
	b.stopC = dc.group.stop
	dc.batchers = append(dc.batchers, b)
	started := dc.started && !dc.stopped
	dc.startMu.Unlock()
	if started {
		dc.group.go1(func() { b.run(dc.group.stop) })
	}
	// Receivers learn the new batcher.
	for _, r := range dc.receivers {
		r.addBatcher(in)
	}
	return b
}

// AddSender grows the propagation stage by one machine. The caller then
// Connects it to remote receivers; nothing else needs to be told (§6.3: a
// new sender is the one doing the reading).
func (dc *Datacenter) AddSender(rate float64) *Sender {
	dc.startMu.Lock()
	name := machineName("Sender", len(dc.senders), len(dc.senders)+2)
	s := NewSender(name, ratelimit.New(rate, 64), dc.state, dc.cfg.SendThreshold, dc.cfg.SendInterval)
	dc.senders = append(dc.senders, s)
	started := dc.started && !dc.stopped
	dc.startMu.Unlock()
	if started {
		dc.group.go1(func() { s.run(dc.group.stop) })
	}
	return s
}

// AddQueue inserts a new queue machine into the token ring after the queue
// at position after (§6.3: "informing one of the queues that it should
// forward the token to the new queue rather than the original neighbor"),
// and advertises its inbox to all filters — the latter "can be performed
// without coordination because a queue can receive any record".
func (dc *Datacenter) AddQueue(after int, rate float64) (*Queue, error) {
	if after < 0 || after >= len(dc.queues) {
		return nil, errors.New("chariots: AddQueue position out of range")
	}
	in := make(chan []*core.Record, depthFor(dc.cfg.ChannelDepth, dc.cfg.FlushThreshold))
	anchor := dc.queues[after]

	dc.startMu.Lock()
	name := machineName("Queue", len(dc.queues), len(dc.queues)+2)
	q := NewQueue(name, ratelimit.New(rate, 64), len(dc.queues), dc.state, in,
		anchor.placement, anchor.maintainers, dc.cfg.CarryDeferred, dc.cfg.TokenIdleWait)
	q.stopC = dc.group.stop
	dc.queues = append(dc.queues, q)
	started := dc.started && !dc.stopped
	dc.startMu.Unlock()

	// Splice into the ring: the new queue forwards to the anchor's old
	// neighbor; the anchor forwards to the new queue.
	q.SetNext(anchor.nextChan())
	anchor.SetNext(q.TokenIn())

	if started {
		dc.group.go1(func() { q.run(dc.group.stop) })
	}
	for _, f := range dc.filters {
		f.addQueue(in)
	}
	return q, nil
}

// AddFilter grows the uniqueness stage by one machine. The new filter
// takes no traffic until ReassignFilter names it in a future mark.
func (dc *Datacenter) AddFilter(rate float64) (*Filter, error) {
	in := make(chan []*core.Record, depthFor(dc.cfg.ChannelDepth, dc.cfg.FlushThreshold))
	var queueIns []chan<- []*core.Record
	for _, q := range dc.queues {
		queueIns = append(queueIns, q.In())
	}
	if err := dc.routing.GrowFilters(len(dc.filters) + 1); err != nil {
		return nil, err
	}
	dc.startMu.Lock()
	name := machineName("Filter", len(dc.filters), len(dc.filters)+2)
	f := NewFilter(name, ratelimit.New(rate, 64), len(dc.filters), dc.cfg.Self, in,
		dc.routing, queueIns, 0)
	f.stopC = dc.group.stop
	dc.filters = append(dc.filters, f)
	started := dc.started && !dc.stopped
	dc.startMu.Unlock()
	if started {
		dc.group.go1(func() { f.run(dc.group.stop) })
	}
	// Batchers learn the new filter's inbox (routing indexes into it).
	for _, b := range dc.batchers {
		b.addFilter(in)
	}
	return f, nil
}

// StageCounts is a datacenter's per-stage machine census.
type StageCounts struct {
	Receivers int `json:"receivers"`
	Batchers  int `json:"batchers"`
	Filters   int `json:"filters"`
	Queues    int `json:"queues"`
	Senders   int `json:"senders"`
}

// Stages reports how many machines each pipeline stage currently runs —
// the autoscaler (and operators) read it to confirm grow operations took
// effect.
func (dc *Datacenter) Stages() StageCounts {
	dc.startMu.Lock()
	defer dc.startMu.Unlock()
	return StageCounts{
		Receivers: len(dc.receivers),
		Batchers:  len(dc.batchers),
		Filters:   len(dc.filters),
		Queues:    len(dc.queues),
		Senders:   len(dc.senders),
	}
}

// ReassignFilter announces a future championship reassignment: from
// fromTOId onward, host's records are split across the named filters by
// TOId residue (§6.3's "future TOId mark"). The mark must be far enough
// ahead that in-flight records below it still route to the old champion —
// the caller picks it, typically current-max-TOId plus a margin.
func (dc *Datacenter) ReassignFilter(host core.DCID, fromTOId uint64, filters []int) error {
	return dc.routing.Reassign(host, fromTOId, filters)
}

// WaitForTOId blocks until the datacenter has applied host's records up to
// toid, or the timeout expires (used to confirm hand-overs took effect).
func (dc *Datacenter) WaitForTOId(host core.DCID, toid uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if dc.state.atable.SelfVector().Get(host) >= toid {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// addBatcher publishes a new batcher inbox to a (possibly running)
// receiver.
func (r *Receiver) addBatcher(in chan<- []*core.Record) {
	r.mu.Lock()
	r.batchers = append(r.batchers, in)
	r.mu.Unlock()
}
