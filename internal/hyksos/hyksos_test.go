package hyksos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
)

func hyksosCfg(self core.DCID, numDCs int) chariots.Config {
	return chariots.Config{
		Self:           self,
		NumDCs:         numDCs,
		Batchers:       1,
		Filters:        1,
		Queues:         1,
		Maintainers:    2,
		Indexers:       2,
		PlacementBatch: 4,
		FlushThreshold: 1, // low latency for interactive KV tests
		FlushInterval:  100 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   100 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	}
}

func startStore(t *testing.T, self core.DCID, numDCs int) (*Store, *chariots.Datacenter) {
	t.Helper()
	dc, err := chariots.New(hyksosCfg(self, numDCs))
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	t.Cleanup(dc.Stop)
	return NewStore(dc), dc
}

func TestPutGet(t *testing.T) {
	st, _ := startStore(t, 0, 1)
	s := st.NewSession()
	if err := s.Put("x", "10"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if v != "10" {
		t.Errorf("Get(x) = %q, want 10", v)
	}
	// Overwrite: latest put wins.
	s.Put("x", "30")
	if v, _ := s.Get("x"); v != "30" {
		t.Errorf("Get(x) after overwrite = %q, want 30", v)
	}
}

func TestGetMissingKey(t *testing.T) {
	st, _ := startStore(t, 0, 1)
	s := st.NewSession()
	s.Put("present", "1")
	if _, err := s.Get("absent"); !errors.Is(err, ErrNoKey) {
		t.Errorf("Get(absent) = %v, want ErrNoKey", err)
	}
}

func TestDeleteTombstone(t *testing.T) {
	st, _ := startStore(t, 0, 1)
	s := st.NewSession()
	s.Put("k", "v")
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNoKey) {
		t.Errorf("Get after delete = %v, want ErrNoKey", err)
	}
	// Re-put resurrects.
	s.Put("k", "v2")
	if v, _ := s.Get("k"); v != "v2" {
		t.Errorf("Get after re-put = %q", v)
	}
}

func TestGetTxnConsistentSnapshot(t *testing.T) {
	st, _ := startStore(t, 0, 1)
	s := st.NewSession()
	s.Put("x", "1")
	s.Put("y", "1")
	res, err := s.GetTxn("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["x"] != "1" || res.Values["y"] != "1" {
		t.Errorf("snapshot = %+v", res.Values)
	}
	if _, ok := res.Values["z"]; ok {
		t.Error("snapshot invented a value for z")
	}
	if res.AtLId == 0 {
		t.Error("snapshot has no pinned position")
	}
}

// TestGetTxnIgnoresNewerWrites is the paper's key snapshot property: a
// value written after the pinned position is not returned even though it
// is more recent (the y=50 case in the Figure 2 walkthrough).
func TestGetTxnIgnoresNewerWrites(t *testing.T) {
	st, dc := startStore(t, 0, 1)
	s := st.NewSession()
	s.Put("x", "30")
	s.Put("y", "20")
	// Appends are acknowledged when ordered, slightly before they are
	// readable; a session Get blocks until the head covers its own puts.
	if v, err := s.Get("y"); err != nil || v != "20" {
		t.Fatalf("Get(y) = %q, %v", v, err)
	}

	// Pin the snapshot now...
	head, _ := dc.Head()
	// ...then write a newer y.
	s.Put("y", "50")

	// A manual Algorithm-1 read at the old pin must see y=20.
	recs, err := dc.Reader().Read(core.Rule{
		TagKey:          keyTag("y"),
		MaxLIdExclusive: head + 1,
		MostRecent:      true,
		Limit:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Body) != "20" {
		t.Fatalf("read at pinned position = %+v, want y=20", recs)
	}
	// A fresh GetTxn pins a newer position and sees y=50.
	res, err := s.GetTxn("y")
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["y"] != "50" {
		t.Errorf("fresh snapshot y = %q, want 50", res.Values["y"])
	}
}

func TestCausalPropagationAcrossDCs(t *testing.T) {
	stA, dcA := startStore(t, 0, 2)
	stB, dcB := startStore(t, 1, 2)
	dcA.ConnectTo(1, dcB.Receivers())
	dcB.ConnectTo(0, dcA.Receivers())

	sa := stA.NewSession()
	if err := sa.Put("x", "10"); err != nil {
		t.Fatal(err)
	}
	sb := stB.NewSession()
	// Hand the causal context to B and wait for it to apply.
	if !sb.WaitFor(sa.Context(), 5*time.Second) {
		t.Fatal("B never applied A's put")
	}
	sb.AdoptContext(sa.Context())
	v, err := sb.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if v != "10" {
		t.Errorf("B reads x = %q, want 10", v)
	}
	// B writes x=20 causally after reading x=10; A must order them.
	if err := sb.Put("x", "20"); err != nil {
		t.Fatal(err)
	}
	sa2 := stA.NewSession()
	if !sa2.WaitFor(sb.Context(), 5*time.Second) {
		t.Fatal("A never applied B's put")
	}
	if v, _ := sa2.Get("x"); v != "20" {
		t.Errorf("A reads x = %q, want 20 (causally latest)", v)
	}
}

// TestFigure2Scenario reproduces the paper's Figure 2 end to end on the
// distributed pipeline: concurrent writes to x at A and B may read
// differently per site; after propagation both sites converge per-host.
func TestFigure2Scenario(t *testing.T) {
	stA, dcA := startStore(t, 0, 2)
	stB, dcB := startStore(t, 1, 2)
	dcA.ConnectTo(1, dcB.Receivers())
	dcB.ConnectTo(0, dcA.Receivers())

	sa := stA.NewSession()
	sb := stB.NewSession()
	// Time 1: concurrent independent writes.
	sa.Put("y", "20")
	sa.Put("x", "30")
	sb.Put("x", "10")
	sb.Put("z", "40")

	// Wait for full exchange of the four records.
	deadline := time.Now().Add(10 * time.Second)
	for dcA.Applied().Get(1) < 2 || dcB.Applied().Get(0) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("time-1 records never exchanged")
		}
		time.Sleep(time.Millisecond)
	}

	// Time 2: one more write on each side.
	sa.Put("y", "50")
	sb.Put("z", "60")

	// Time 3: full propagation.
	deadline = time.Now().Add(10 * time.Second)
	for dcA.Applied().Get(1) < 3 || dcB.Applied().Get(0) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("time-2 records never exchanged")
		}
		time.Sleep(time.Millisecond)
	}
	dcA.Quiesce(30*time.Millisecond, 5*time.Second)
	dcB.Quiesce(30*time.Millisecond, 5*time.Second)

	// Both sites must now agree on y and z (causally ordered values),
	// and x converges to one of the two concurrent writes per site.
	gaA := stA.NewSession()
	gaB := stB.NewSession()
	resA, err := gaA.GetTxn("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	resB, err := gaB.GetTxn("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if resA.Values["y"] != "50" || resB.Values["y"] != "50" {
		t.Errorf("y = %q/%q, want 50/50", resA.Values["y"], resB.Values["y"])
	}
	if resA.Values["z"] != "60" || resB.Values["z"] != "60" {
		t.Errorf("z = %q/%q, want 60/60", resA.Values["z"], resB.Values["z"])
	}
	xA, xB := resA.Values["x"], resB.Values["x"]
	if xA != "10" && xA != "30" {
		t.Errorf("x at A = %q", xA)
	}
	if xB != "10" && xB != "30" {
		t.Errorf("x at B = %q", xB)
	}
	// Both logs causally valid.
	for _, dc := range []*chariots.Datacenter{dcA, dcB} {
		recs, _ := dc.LogRecords()
		if err := chariots.CheckCausalInvariant(recs); err != nil {
			t.Error(err)
		}
	}
}

func TestManyKeysManySessions(t *testing.T) {
	st, _ := startStore(t, 0, 1)
	const keys = 20
	s := st.NewSession()
	for round := 0; round < 5; round++ {
		for k := 0; k < keys; k++ {
			if err := s.Put(fmt.Sprintf("k%d", k), fmt.Sprintf("v%d-%d", k, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := 0; k < keys; k++ {
		v, err := s.Get(fmt.Sprintf("k%d", k))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%d-4", k); v != want {
			t.Errorf("k%d = %q, want %q", k, v, want)
		}
	}
	// Snapshot across all keys is internally consistent.
	var names []string
	for k := 0; k < keys; k++ {
		names = append(names, fmt.Sprintf("k%d", k))
	}
	res, err := s.GetTxn(names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != keys {
		t.Errorf("snapshot has %d keys, want %d", len(res.Values), keys)
	}
}

func BenchmarkHyksosPut(b *testing.B) {
	dc, err := chariots.New(hyksosCfg(0, 1))
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	s := NewStore(dc).NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("bench-key", "value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyksosGet(b *testing.B) {
	dc, err := chariots.New(hyksosCfg(0, 1))
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	s := NewStore(dc).NewSession()
	if err := s.Put("bench-key", "value"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("bench-key"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyksosGetTxn(b *testing.B) {
	dc, err := chariots.New(hyksosCfg(0, 1))
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	s := NewStore(dc).NewSession()
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, "v"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetTxn("a", "b", "c"); err != nil {
			b.Fatal(err)
		}
	}
}
