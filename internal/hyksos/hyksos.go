// Package hyksos implements Hyksos (§4.1): a causally consistent
// key-value store built purely on the Chariots shared-log interface. The
// value of a key lives in the log; the current value is the record with
// the highest log position containing a put to that key. Get transactions
// (Algorithm 1) return a consistent snapshot by pinning the head of the
// log and reading each key's latest version below it.
package hyksos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/vclock"
)

// putRetries bounds how many times a put is retried when the datacenter's
// admission control sheds it (Config.ShedOnSaturation); waits between
// attempts honor the server's retry hint via flstore.Retry.
const putRetries = 8

// keyTag namespaces the per-key index tag so each key gets its own posting
// list at the indexers.
func keyTag(key string) string { return "hyksos:" + key }

// ErrNoKey is returned by Get for keys with no visible put.
var ErrNoKey = errors.New("hyksos: key not found")

// Store is a Hyksos front end over one datacenter's Chariots instance.
// The datacenter must be configured with at least one indexer (tag reads).
// Store is safe for concurrent use; per-client causal context lives in
// Session.
type Store struct {
	dc *chariots.Datacenter

	// PollInterval paces waits on state that has no subscription surface
	// (the awareness table in WaitFor). Head-of-log waits subscribe
	// through the reader's WaitHead instead of sleeping. 0 = 500µs.
	PollInterval time.Duration
}

func (s *Store) pollInterval() time.Duration {
	if s.PollInterval > 0 {
		return s.PollInterval
	}
	return 500 * time.Microsecond
}

// NewStore wraps a running datacenter.
func NewStore(dc *chariots.Datacenter) *Store { return &Store{dc: dc} }

// Session is one application client's causal context: the record
// dependencies it has observed (its own puts and every get it performed).
// Operations through the same session are causally ordered; Chariots
// honors that order at every datacenter.
type Session struct {
	st       *Store
	observed vclock.Vector
	// lastPutLId makes the session read-its-own-writes: gets wait for
	// the head of the log to pass the session's latest put.
	lastPutLId uint64
}

// NewSession starts a causal session against the store.
func (s *Store) NewSession() *Session {
	return &Session{st: s, observed: vclock.NewVector(s.dc.ATable().N())}
}

// Put writes key=value. The record carries the session's observed
// dependencies, so everything the session has read happens-before this
// put at every datacenter.
func (s *Session) Put(key, value string) error {
	ack, err := flstore.Retry(putRetries, func() (chariots.AppendAck, error) {
		return s.st.dc.AppendDeps([]byte(value),
			[]core.Tag{{Key: keyTag(key), Value: value}}, s.observed.Deps())
	})
	if err != nil {
		return err
	}
	s.observed.Advance(s.st.dc.Self(), ack.TOId)
	s.lastPutLId = ack.LId
	return nil
}

// Delete writes a tombstone for key.
func (s *Session) Delete(key string) error {
	ack, err := flstore.Retry(putRetries, func() (chariots.AppendAck, error) {
		return s.st.dc.AppendDeps(nil,
			[]core.Tag{{Key: keyTag(key), Value: ""}, {Key: "hyksos-tombstone", Value: "1"}},
			s.observed.Deps())
	})
	if err != nil {
		return err
	}
	s.observed.Advance(s.st.dc.Self(), ack.TOId)
	s.lastPutLId = ack.LId
	return nil
}

// waitHead blocks until the head of the log reaches at least lid. The wait
// subscribes to head advances (the reader parks on the laggard range's
// long-poll) instead of sleeping a fixed tick.
func (s *Session) waitHead(lid uint64) error {
	if lid == 0 {
		return nil
	}
	head, err := s.st.dc.Reader().WaitHead(lid, 5*time.Second)
	if err != nil {
		return err
	}
	if head < lid {
		return fmt.Errorf("hyksos: head stuck at %d below %d", head, lid)
	}
	return nil
}

// Get returns the current value of key: the most recent put below the head
// of the log. The read joins the session's causal context.
func (s *Session) Get(key string) (string, error) {
	if err := s.waitHead(s.lastPutLId); err != nil {
		return "", err
	}
	recs, err := s.st.dc.Reader().Read(core.Rule{
		TagKey:     keyTag(key),
		MostRecent: true,
		Limit:      1,
	})
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		return "", fmt.Errorf("%w: %q", ErrNoKey, key)
	}
	rec := recs[0]
	s.observe(rec)
	if rec.HasTag("hyksos-tombstone") {
		return "", fmt.Errorf("%w: %q (deleted)", ErrNoKey, key)
	}
	return string(rec.Body), nil
}

// observe folds a read record into the session's causal context
// (happened-before: the record's host order and its own dependencies).
func (s *Session) observe(rec *core.Record) {
	s.observed.Advance(rec.Host, rec.TOId)
	for _, d := range rec.Deps {
		s.observed.Advance(d.DC, d.TOId)
	}
}

// TxnResult is the snapshot returned by a get transaction: values for the
// keys that had one, and the pinned log position the snapshot reflects.
type TxnResult struct {
	Values map[string]string
	AtLId  uint64
}

// GetTxn runs Algorithm 1: pin the head of the log, then read each key's
// most recent version at a position at or below the pin. The result is a
// consistent snapshot: exactly the state of the key-value store at log
// position AtLId.
func (s *Session) GetTxn(keys ...string) (*TxnResult, error) {
	if err := s.waitHead(s.lastPutLId); err != nil {
		return nil, err
	}
	// Line 2: request the head of the log position id. HeadExact
	// guarantees no gaps at or below it.
	head, err := s.st.dc.Head()
	if err != nil {
		return nil, err
	}
	res := &TxnResult{Values: make(map[string]string, len(keys)), AtLId: head}
	// Lines 4-6: read each key's most recent version with LId <= head.
	for _, key := range keys {
		recs, err := s.st.dc.Reader().Read(core.Rule{
			TagKey:          keyTag(key),
			MaxLIdExclusive: head + 1,
			MostRecent:      true,
			Limit:           1,
		})
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			continue
		}
		rec := recs[0]
		s.observe(rec)
		if rec.HasTag("hyksos-tombstone") {
			continue
		}
		res.Values[key] = string(rec.Body)
	}
	return res, nil
}

// WaitFor blocks until this datacenter has applied the given remote
// context (another session's observed vector) AND the head of the log has
// advanced past those records, so subsequent Gets can read them — the
// cross-datacenter causal hand-off used when a client migrates or a test
// asserts propagation. (Application advances the awareness table slightly
// before the log maintainers finish persisting, hence the second wait.)
func (s *Session) WaitFor(ctx vclock.Vector, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.st.dc.Applied().Covers(ctx) {
			// LIds are dense, so every record applied so far has an
			// LId at or below the applied count; once the head
			// covers it, the context's records are readable.
			target := s.st.dc.AppliedCount()
			remain := time.Until(deadline)
			if remain <= 0 {
				return false
			}
			head, err := s.st.dc.Reader().WaitHead(target, remain)
			return err == nil && head >= target
		}
		time.Sleep(s.st.pollInterval())
	}
	return false
}

// Context returns a copy of the session's causal context, transferable to
// a session at another datacenter.
func (s *Session) Context() vclock.Vector { return s.observed.Clone() }

// AdoptContext merges a transferred causal context into this session.
func (s *Session) AdoptContext(ctx vclock.Vector) { s.observed.Merge(ctx) }
