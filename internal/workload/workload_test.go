package workload

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestNewBodyDeterministic(t *testing.T) {
	a := NewBody(512, 1)
	b := NewBody(512, 1)
	c := NewBody(512, 2)
	if len(a) != 512 {
		t.Fatalf("len = %d", len(a))
	}
	if string(a) != string(b) {
		t.Error("same seed produced different bodies")
	}
	if string(a) == string(c) {
		t.Error("different seeds produced identical bodies")
	}
}

func TestOpenLoopGenOffersTargetRate(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 50_000, BatchSize: 50, RecordSize: 16}
	accepted := 0
	g.Run(func(recs []*core.Record) int {
		accepted += len(recs)
		return len(recs)
	}, 300*time.Millisecond)
	offered := float64(g.Offered.Value()) / 0.3
	if offered < 30_000 || offered > 70_000 {
		t.Errorf("offered rate = %.0f/s, want ≈50000/s", offered)
	}
	if g.Accepted.Value() != uint64(accepted) {
		t.Error("accepted counter mismatch")
	}
}

// TestRunTimedScheduleNeverReAnchors is the coordinated-omission fix: a
// sink that stalls must see later batches arrive with their original
// scheduled intended times, so offered-vs-accepted latency measured from
// intended includes the stall.
func TestRunTimedScheduleNeverReAnchors(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 10_000, BatchSize: 100, RecordSize: 16}
	var maxLate time.Duration
	calls := 0
	start := time.Now()
	g.RunTimed(func(intended time.Time, recs []*core.Record) int {
		calls++
		if calls == 1 {
			time.Sleep(150 * time.Millisecond) // the stall
		}
		if late := time.Since(intended); late > maxLate {
			maxLate = late
		}
		return len(recs)
	}, 300*time.Millisecond)
	// Batches scheduled during the 150ms stall are offered late; with the
	// fixed schedule their lateness approaches the stall length. The old
	// re-anchoring behaviour capped it at ~100ms.
	if maxLate < 110*time.Millisecond {
		t.Errorf("max lateness %v, want ≥110ms (stall must not be forgiven)", maxLate)
	}
	// The schedule still ends on time: intended times span d, not d+stall.
	if e := time.Since(start); e > 600*time.Millisecond {
		t.Errorf("run took %v", e)
	}
}

func TestRunTimedIntendedSpacing(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 10_000, BatchSize: 100, RecordSize: 16}
	var prev time.Time
	g.RunTimed(func(intended time.Time, recs []*core.Record) int {
		if !prev.IsZero() {
			if got := intended.Sub(prev); got != 10*time.Millisecond {
				t.Fatalf("intended spacing %v, want exactly 10ms", got)
			}
		}
		prev = intended
		return len(recs)
	}, 100*time.Millisecond)
	if prev.IsZero() {
		t.Fatal("sink never called")
	}
	// A non-positive target is a no-op, not a divide-by-zero spin.
	zero := &OpenLoopGen{TargetPerSec: 0}
	zero.RunTimed(func(time.Time, []*core.Record) int { t.Fatal("offered at zero rate"); return 0 }, 50*time.Millisecond)
}

func TestOpenLoopGenCountsRejections(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 50_000, BatchSize: 10, RecordSize: 16}
	g.Run(func(recs []*core.Record) int {
		return len(recs) / 2 // sink accepts half
	}, 100*time.Millisecond)
	if g.Accepted.Value() == 0 || g.Accepted.Value() >= g.Offered.Value() {
		t.Errorf("accepted=%d offered=%d; want accepted ≈ offered/2",
			g.Accepted.Value(), g.Offered.Value())
	}
}

func TestClosedLoopGenBoundedByOwnRate(t *testing.T) {
	g := &ClosedLoopGen{RatePerSec: 20_000, BatchSize: 20, RecordSize: 16}
	stop := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stop)
	}()
	g.Run(func(recs []*core.Record) {}, stop)
	rate := float64(g.Sent.Value()) / 0.3
	if rate < 10_000 || rate > 30_000 {
		t.Errorf("sent rate = %.0f/s, want ≈20000/s", rate)
	}
}

func TestClosedLoopGenStops(t *testing.T) {
	g := &ClosedLoopGen{BatchSize: 8, RecordSize: 8}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Run(func(recs []*core.Record) {}, stop)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("generator did not stop")
	}
	if g.Sent.Value() == 0 {
		t.Error("unbounded generator sent nothing")
	}
}

func TestUniformKeys(t *testing.T) {
	u := NewUniformKeys(10, 1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Key()] = true
	}
	if len(seen) != 10 {
		t.Errorf("saw %d distinct keys, want 10", len(seen))
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	z := NewZipfKeys(100, 1.5, 1)
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[z.Key()]++
	}
	if counts["k0"] < counts["k50"] {
		t.Errorf("zipf not skewed: k0=%d k50=%d", counts["k0"], counts["k50"])
	}
	// Degenerate skew parameter is clamped, not panicking.
	z2 := NewZipfKeys(10, 0.5, 1)
	_ = z2.Key()
}

func TestItoa(t *testing.T) {
	for _, tt := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {1234567, "1234567"}} {
		if got := itoa(tt.n); got != tt.want {
			t.Errorf("itoa(%d) = %q", tt.n, got)
		}
	}
}
