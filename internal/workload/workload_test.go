package workload

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestNewBodyDeterministic(t *testing.T) {
	a := NewBody(512, 1)
	b := NewBody(512, 1)
	c := NewBody(512, 2)
	if len(a) != 512 {
		t.Fatalf("len = %d", len(a))
	}
	if string(a) != string(b) {
		t.Error("same seed produced different bodies")
	}
	if string(a) == string(c) {
		t.Error("different seeds produced identical bodies")
	}
}

func TestOpenLoopGenOffersTargetRate(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 50_000, BatchSize: 50, RecordSize: 16}
	accepted := 0
	g.Run(func(recs []*core.Record) int {
		accepted += len(recs)
		return len(recs)
	}, 300*time.Millisecond)
	offered := float64(g.Offered.Value()) / 0.3
	if offered < 30_000 || offered > 70_000 {
		t.Errorf("offered rate = %.0f/s, want ≈50000/s", offered)
	}
	if g.Accepted.Value() != uint64(accepted) {
		t.Error("accepted counter mismatch")
	}
}

func TestOpenLoopGenCountsRejections(t *testing.T) {
	g := &OpenLoopGen{TargetPerSec: 50_000, BatchSize: 10, RecordSize: 16}
	g.Run(func(recs []*core.Record) int {
		return len(recs) / 2 // sink accepts half
	}, 100*time.Millisecond)
	if g.Accepted.Value() == 0 || g.Accepted.Value() >= g.Offered.Value() {
		t.Errorf("accepted=%d offered=%d; want accepted ≈ offered/2",
			g.Accepted.Value(), g.Offered.Value())
	}
}

func TestClosedLoopGenBoundedByOwnRate(t *testing.T) {
	g := &ClosedLoopGen{RatePerSec: 20_000, BatchSize: 20, RecordSize: 16}
	stop := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stop)
	}()
	g.Run(func(recs []*core.Record) {}, stop)
	rate := float64(g.Sent.Value()) / 0.3
	if rate < 10_000 || rate > 30_000 {
		t.Errorf("sent rate = %.0f/s, want ≈20000/s", rate)
	}
}

func TestClosedLoopGenStops(t *testing.T) {
	g := &ClosedLoopGen{BatchSize: 8, RecordSize: 8}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Run(func(recs []*core.Record) {}, stop)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("generator did not stop")
	}
	if g.Sent.Value() == 0 {
		t.Error("unbounded generator sent nothing")
	}
}

func TestUniformKeys(t *testing.T) {
	u := NewUniformKeys(10, 1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Key()] = true
	}
	if len(seen) != 10 {
		t.Errorf("saw %d distinct keys, want 10", len(seen))
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	z := NewZipfKeys(100, 1.5, 1)
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[z.Key()]++
	}
	if counts["k0"] < counts["k50"] {
		t.Errorf("zipf not skewed: k0=%d k50=%d", counts["k0"], counts["k50"])
	}
	// Degenerate skew parameter is clamped, not panicking.
	z2 := NewZipfKeys(10, 0.5, 1)
	_ = z2.Key()
}

func TestItoa(t *testing.T) {
	for _, tt := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {1234567, "1234567"}} {
		if got := itoa(tt.n); got != tt.want {
			t.Errorf("itoa(%d) = %q", tt.n, got)
		}
	}
}
