// Package workload provides the record generators behind the paper's
// evaluation (§7): open-loop generators that offer a configurable target
// throughput of fixed-size records (512 bytes unless stated otherwise),
// and key-distribution helpers for the application workloads.
package workload

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// DefaultRecordSize is the paper's record size (§7: "the size of each
// record is 512 Bytes").
const DefaultRecordSize = 512

// NewBody returns a deterministic pseudo-random record body of n bytes.
func NewBody(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// Sink consumes a batch of offered records, returning how many were
// accepted (an overloaded component may accept fewer — the generator
// counts the rest as dropped offered load).
type Sink func(recs []*core.Record) int

// OpenLoopGen offers records at a fixed target rate regardless of
// acceptance — the generator behind Figure 7's target-throughput sweep.
// Offered load above the sink's capacity is dropped by the sink, not
// queued, so achieved throughput plateaus the way the paper's does.
type OpenLoopGen struct {
	// TargetPerSec is the offered rate (records/second).
	TargetPerSec float64
	// RecordSize is the body size; DefaultRecordSize if 0.
	RecordSize int
	// BatchSize is how many records are offered per sink call (batching
	// amortizes call overhead without changing the offered rate).
	BatchSize int
	// Host stamps the records' host datacenter.
	Host core.DCID

	// Offered and Accepted count records.
	Offered  metrics.Counter
	Accepted metrics.Counter
}

// TimedSink consumes a batch of offered records along with the batch's
// intended offer time from the open-loop schedule. Measuring a record's
// latency from intended — not from when the generator finally got around
// to calling the sink — is what keeps the measurement safe from
// coordinated omission: when the sink stalls, the stall shows up in the
// latency of every arrival scheduled behind it.
type TimedSink func(intended time.Time, recs []*core.Record) int

// Run offers records to sink for the given duration (blocking).
func (g *OpenLoopGen) Run(sink Sink, d time.Duration) {
	g.RunTimed(func(_ time.Time, recs []*core.Record) int { return sink(recs) }, d)
}

// RunTimed offers records to sink for the given duration, stamping every
// batch with its intended offer time. The schedule is fixed up front
// (start + k*interval): a slow sink makes the generator late, never the
// schedule — late batches are offered immediately, back to back, with
// their original intended timestamps, so offered-vs-accepted latency
// measured against them includes the time the batch spent waiting on the
// stalled generator. The old behaviour of re-anchoring the schedule when
// more than 100ms behind silently forgave those stalls, under-reporting
// tail latency in exactly the overloaded runs where the tail matters.
func (g *OpenLoopGen) RunTimed(sink TimedSink, d time.Duration) {
	if g.TargetPerSec <= 0 {
		return
	}
	batch := g.BatchSize
	if batch < 1 {
		batch = 32
	}
	size := g.RecordSize
	if size == 0 {
		size = DefaultRecordSize
	}
	body := NewBody(size, 42)

	interval := time.Duration(float64(batch) / g.TargetPerSec * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	for k := 0; ; k++ {
		intended := start.Add(time.Duration(k) * interval)
		if intended.Sub(start) >= d {
			return
		}
		if wait := time.Until(intended); wait > 0 {
			time.Sleep(wait)
		}
		recs := make([]*core.Record, batch)
		for i := range recs {
			recs[i] = &core.Record{Host: g.Host, Body: body}
		}
		g.Offered.Add(uint64(batch))
		g.Accepted.Add(uint64(sink(intended, recs)))
	}
}

// ClosedLoopGen issues records as fast as the sink admits them, bounded
// only by the generator machine's own capacity — the client machines of
// Tables 2–5, whose throughput is shaped by pipeline backpressure.
type ClosedLoopGen struct {
	// RatePerSec bounds the generator machine itself (the paper's
	// client machines top out ≈129K records/s); 0 = unbounded.
	RatePerSec float64
	RecordSize int
	BatchSize  int
	Host       core.DCID

	// Sent counts records pushed into the pipeline.
	Sent metrics.Counter
}

// Run pushes records into sink until stop closes. sink should block when
// the pipeline is saturated (backpressure shapes the measured rate).
func (g *ClosedLoopGen) Run(sink func(recs []*core.Record), stop <-chan struct{}) {
	batch := g.BatchSize
	if batch < 1 {
		batch = 32
	}
	size := g.RecordSize
	if size == 0 {
		size = DefaultRecordSize
	}
	body := NewBody(size, 7)

	var pace *time.Ticker
	var interval time.Duration
	if g.RatePerSec > 0 {
		interval = time.Duration(float64(batch) / g.RatePerSec * float64(time.Second))
		if interval <= 0 {
			interval = time.Microsecond
		}
		pace = time.NewTicker(interval)
		defer pace.Stop()
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if pace != nil {
			select {
			case <-stop:
				return
			case <-pace.C:
			}
		}
		recs := make([]*core.Record, batch)
		for i := range recs {
			recs[i] = &core.Record{Host: g.Host, Body: body}
		}
		sink(recs)
		g.Sent.Add(uint64(batch))
	}
}

// KeyChooser picks keys for application workloads.
type KeyChooser interface {
	Key() string
}

// UniformKeys picks uniformly from n keys.
type UniformKeys struct {
	mu  sync.Mutex
	rng *rand.Rand
	ks  []string
}

// NewUniformKeys builds a chooser over keys "k0".."k<n-1>".
func NewUniformKeys(n int, seed int64) *UniformKeys {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = "k" + itoa(i)
	}
	return &UniformKeys{rng: rand.New(rand.NewSource(seed)), ks: ks}
}

// Key implements KeyChooser.
func (u *UniformKeys) Key() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.ks[u.rng.Intn(len(u.ks))]
}

// ZipfKeys picks keys with a Zipfian distribution (hot keys), the standard
// skewed workload for key-value benchmarks.
type ZipfKeys struct {
	mu   sync.Mutex
	zipf *rand.Zipf
	ks   []string
}

// NewZipfKeys builds a Zipf chooser over n keys with skew s (>1).
func NewZipfKeys(n int, s float64, seed int64) *ZipfKeys {
	if s <= 1 {
		s = 1.1
	}
	ks := make([]string, n)
	for i := range ks {
		ks[i] = "k" + itoa(i)
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfKeys{zipf: rand.NewZipf(rng, s, 1, uint64(n-1)), ks: ks}
}

// Key implements KeyChooser.
func (z *ZipfKeys) Key() string {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.ks[z.zipf.Uint64()]
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
