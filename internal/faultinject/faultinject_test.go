package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/trace"
)

// echoClient is a minimal rpc.Client that records calls and echoes the
// payload back.
type echoClient struct {
	mu     sync.Mutex
	calls  int
	closed bool
}

func (e *echoClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

func (e *echoClient) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

func (e *echoClient) callCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

var _ rpc.Client = (*echoClient)(nil)

func TestSeverHealGating(t *testing.T) {
	ctl := New(Options{Seed: 1})
	inner := &echoClient{}
	c := ctl.Wrap("a->b", inner)

	if _, err := c.Call(1, []byte("hi")); err != nil {
		t.Fatalf("healthy call: %v", err)
	}
	ctl.Sever("a->b")
	if !ctl.Severed("a->b") {
		t.Fatal("Severed() = false after Sever")
	}
	if _, err := c.Call(1, []byte("hi")); !errors.Is(err, ErrSevered) {
		t.Fatalf("severed call = %v, want ErrSevered", err)
	}
	ctl.Heal("a->b")
	if _, err := c.Call(1, []byte("hi")); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	if got := inner.callCount(); got != 2 {
		t.Errorf("inner saw %d calls, want 2 (severed call must not reach it)", got)
	}

	// The scripted events appear in the log alongside the rejection.
	var acts []Action
	for _, e := range ctl.Events() {
		acts = append(acts, e.Action)
	}
	want := []Action{ActionSever, ActionReject, ActionHeal}
	if len(acts) != len(want) {
		t.Fatalf("events = %v, want %v", acts, want)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("events = %v, want %v", acts, want)
		}
	}
}

func TestSameSeedReplaysIdentically(t *testing.T) {
	run := func(seed uint64) string {
		ctl := New(Options{
			Seed:   seed,
			DropP:  0.3,
			DupP:   0.2,
			DelayP: 0.2,
			Delay:  time.Millisecond,
			Sleep:  func(time.Duration) {},
		})
		a := ctl.Wrap("c->m0", &echoClient{})
		b := ctl.Wrap("c->m1", &echoClient{})
		for i := 0; i < 50; i++ {
			a.Call(1, nil)
			b.Call(1, nil)
			if i == 20 {
				ctl.Sever("c->m1")
			}
			if i == 30 {
				ctl.Heal("c->m1")
			}
		}
		return ctl.Fingerprint()
	}

	first := run(42)
	if first == "" {
		t.Fatal("schedule with 30% drop over 100 calls produced no events")
	}
	if second := run(42); second != first {
		t.Errorf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
	if other := run(43); other == first {
		t.Error("different seeds produced the identical event log (suspicious schedule)")
	}
}

func TestLinksDrawIndependentStreams(t *testing.T) {
	// Two links under one seed must not fault in lockstep; the link name is
	// folded into the stream.
	ctl := New(Options{Seed: 7, DropP: 0.5})
	a := ctl.Wrap("x", &echoClient{})
	b := ctl.Wrap("y", &echoClient{})
	diverged := false
	for i := 0; i < 64; i++ {
		_, errA := a.Call(1, nil)
		_, errB := b.Call(1, nil)
		if (errA == nil) != (errB == nil) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("links x and y faulted identically on every step")
	}
}

func TestDropReturnsErrDroppedWithoutDelivery(t *testing.T) {
	ctl := New(Options{Seed: 3, DropP: 1})
	inner := &echoClient{}
	c := ctl.Wrap("l", inner)
	if _, err := c.Call(1, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if inner.callCount() != 0 {
		t.Errorf("dropped call reached inner client (%d calls)", inner.callCount())
	}
}

func TestDupDeliversTwice(t *testing.T) {
	ctl := New(Options{Seed: 3, DupP: 1})
	inner := &echoClient{}
	c := ctl.Wrap("l", inner)
	resp, err := c.Call(1, []byte("p"))
	if err != nil || string(resp) != "p" {
		t.Fatalf("dup call = %q, %v", resp, err)
	}
	if inner.callCount() != 2 {
		t.Errorf("inner saw %d calls, want 2", inner.callCount())
	}
}

func TestDelayInvokesSleep(t *testing.T) {
	var slept time.Duration
	ctl := New(Options{
		Seed:   3,
		DelayP: 1,
		Delay:  25 * time.Millisecond,
		Sleep:  func(d time.Duration) { slept += d },
	})
	inner := &echoClient{}
	c := ctl.Wrap("l", inner)
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	if slept != 25*time.Millisecond {
		t.Errorf("slept %v, want 25ms", slept)
	}
	if inner.callCount() != 1 {
		t.Errorf("delayed call delivered %d times", inner.callCount())
	}
}

func TestClosepassesThrough(t *testing.T) {
	ctl := New(Options{Seed: 1})
	inner := &echoClient{}
	c := ctl.Wrap("l", inner)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !inner.closed {
		t.Error("Close did not reach inner client")
	}
}

func TestPerLinkOptionsOverrideGlobal(t *testing.T) {
	ctl := New(Options{Seed: 5, DropP: 1})
	ctl.SetLink("wan", LinkOptions{DelayP: 1, Delay: 3 * time.Millisecond})

	// The overridden link never drops; every call delays by the base.
	for i := 0; i < 16; i++ {
		out := ctl.Next("wan")
		if out.Action != ActionDelay || out.Delay != 3*time.Millisecond {
			t.Fatalf("wan step %d = %+v, want delay 3ms", i, out)
		}
	}
	// Links without an override still follow the global schedule.
	if out := ctl.Next("plain"); out.Action != ActionDrop {
		t.Fatalf("plain link = %+v, want drop under global DropP=1", out)
	}
	if got := ctl.Delays("wan"); len(got) != 16 {
		t.Fatalf("Delays(wan) recorded %d entries, want 16", len(got))
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		ctl := New(Options{Seed: seed})
		ctl.SetLink("dc0->dc1", LinkOptions{DelayP: 1, Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
		for i := 0; i < 64; i++ {
			out := ctl.Next("dc0->dc1")
			if out.Delay < 10*time.Millisecond || out.Delay >= 15*time.Millisecond {
				t.Fatalf("step %d delay %v outside [10ms, 15ms)", i, out.Delay)
			}
		}
		return ctl.Delays("dc0->dc1")
	}
	a, b := run(11), run(11)
	if len(a) != 64 {
		t.Fatalf("recorded %d delays, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical jitter sequence")
	}
}

func TestNextSeverFeedsSharedEventLog(t *testing.T) {
	// Scripted events and Next-driven probabilistic events land on one log
	// with one fingerprint — the replayable record of a WAN scenario.
	ctl := New(Options{Seed: 2})
	ctl.SetLink("l", LinkOptions{DelayP: 1, Delay: time.Millisecond})
	ctl.Next("l")
	ctl.Sever("l")
	if out := ctl.Next("l"); out.Action != ActionReject {
		t.Fatalf("severed Next = %+v, want reject", out)
	}
	ctl.Heal("l")
	ctl.Next("l")
	want := []Action{ActionDelay, ActionSever, ActionReject, ActionHeal, ActionDelay}
	evs := ctl.Events()
	if len(evs) != len(want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
	for i, e := range evs {
		if e.Action != want[i] {
			t.Fatalf("event %d = %s, want %s", i, e.Action, want[i])
		}
	}
	if ctl.Fingerprint() == "" {
		t.Fatal("empty fingerprint for a populated event log")
	}
}

// TestFaultAnnotatesSpans verifies that drops on a traced call leave a
// fault.* span on the call's trace in the flight recorder, while untraced
// calls leave nothing.
func TestFaultAnnotatesSpans(t *testing.T) {
	ctl := New(Options{Seed: 7, DropP: 1})
	inner := &echoClient{}
	c := ctl.Wrap("dc0->dc1", inner)

	tc := trace.Forced()
	if _, err := rpc.CallTraced(c, &tc, 9, []byte("payload")); !errors.Is(err, ErrDropped) {
		t.Fatalf("traced call = %v, want ErrDropped", err)
	}
	spans := trace.Default().Snapshot(trace.Filter{Trace: tc.T, Stage: "fault.drop"})
	if len(spans) != 1 {
		t.Fatalf("fault.drop spans for trace = %d, want 1", len(spans))
	}
	if spans[0].Outcome != "drop" {
		t.Errorf("span outcome = %q, want drop", spans[0].Outcome)
	}

	// An untraced call through the same dropping link records nothing new.
	before := trace.Default().Total()
	if _, err := c.Call(9, []byte("plain")); !errors.Is(err, ErrDropped) {
		t.Fatalf("plain call = %v, want ErrDropped", err)
	}
	if after := trace.Default().Total(); after != before {
		t.Errorf("untraced drop recorded %d spans", after-before)
	}
}
