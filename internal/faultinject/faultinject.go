// Package faultinject is a deterministic chaos layer over internal/rpc:
// it wraps rpc.Clients so that calls are dropped, delayed, duplicated, or
// rejected (severed link) according to a schedule derived purely from a
// seed, a link name, and a per-link call counter. The same seed therefore
// replays the same event sequence byte for byte — crash, partition, and
// flap scenarios become ordinary table-driven tests.
//
// The harness injects at the client side of a link, which models both
// directions of failure visible to a caller: a dead server and a severed
// network path look identical (the call errors). Scripted events (Sever,
// Heal) compose with the probabilistic schedule; both feed one shared
// event log so tests can assert replay equality.
//
// Two consumption surfaces share one controller: rpc.Clients wrapped with
// Wrap (faults applied inline to Call), and non-RPC transports that ask
// for the decision explicitly with Next and apply it themselves — the WAN
// emulation in internal/scale wraps the chariots inter-datacenter
// delivery path this way. Per-link overrides (SetLink) turn the uniform
// schedule into a per-DC-pair latency/jitter/loss matrix while keeping
// every decision a pure function of (seed, link, step).
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
	"repro/internal/trace"
)

// ErrDropped is returned for a call the schedule chose to drop. It is a
// transport-style error (not an rpc.RemoteError), so upper layers treat it
// like a lost connection.
var ErrDropped = errors.New("faultinject: call dropped")

// ErrSevered is returned for calls over a severed link.
var ErrSevered = errors.New("faultinject: link severed")

// Options configures the probabilistic part of a schedule. Probabilities
// are per call, evaluated independently per link from the seeded PRNG;
// zero values disable that fault class.
type Options struct {
	// Seed drives every probabilistic decision. The same seed, link names,
	// and call order reproduce the same faults.
	Seed uint64
	// DropP is the probability a call is dropped (error, request not
	// delivered).
	DropP float64
	// DupP is the probability a call is delivered twice (the duplicate
	// runs first, its response discarded) — exercises idempotency.
	DupP float64
	// DelayP is the probability a call is delayed by Delay before
	// delivery.
	DelayP float64
	// Delay is the injected latency for delayed calls.
	Delay time.Duration
	// Sleep is the delay implementation; nil uses time.Sleep. Tests
	// substitute a recorder to keep wall-clock out of the schedule.
	Sleep func(time.Duration)
}

// LinkOptions overrides the controller-wide probabilities for one named
// link — the per-DC-pair entries of a WAN latency/jitter/loss matrix.
// A link with options set draws from the same seeded per-link stream as
// before, so setting options never perturbs other links' schedules.
type LinkOptions struct {
	// DropP/DupP/DelayP are per-call probabilities, as in Options.
	DropP  float64
	DupP   float64
	DelayP float64
	// Delay is the base injected latency for delayed calls.
	Delay time.Duration
	// Jitter adds a deterministic uniform [0, Jitter) component on top of
	// Delay each time a delay fires, drawn from the link's seeded stream —
	// same seed, same per-link delay sequence.
	Jitter time.Duration
}

// Outcome is the resolved fault decision for one call on a link.
type Outcome struct {
	// Action is the injected fault; "" means deliver normally. ActionReject
	// reports a severed link, ActionDrop a lost call; both mean the call
	// must not be delivered. ActionDelay carries the resolved latency;
	// ActionDup asks the transport to deliver twice.
	Action Action
	// Delay is the resolved injected latency (base + jitter) when Action
	// is ActionDelay, zero otherwise.
	Delay time.Duration
}

// Action identifies one injected event.
type Action string

const (
	ActionDrop   Action = "drop"
	ActionDelay  Action = "delay"
	ActionDup    Action = "dup"
	ActionReject Action = "reject" // call hit a severed link
	ActionSever  Action = "sever"  // scripted Sever()
	ActionHeal   Action = "heal"   // scripted Heal()
)

// Event is one entry of the deterministic event log.
type Event struct {
	Link   string
	Step   uint64 // per-link call counter at the time of the event
	Action Action
}

// Controller owns the schedule and the shared state of all wrapped links.
type Controller struct {
	opts Options

	mu      sync.Mutex
	severed map[string]bool
	steps   map[string]uint64
	links   map[string]LinkOptions
	delays  map[string][]time.Duration
	events  []Event
}

// New returns a controller for the given schedule options.
func New(opts Options) *Controller {
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Controller{
		opts:    opts,
		severed: make(map[string]bool),
		steps:   make(map[string]uint64),
		links:   make(map[string]LinkOptions),
		delays:  make(map[string][]time.Duration),
	}
}

// SetLink installs per-link options overriding the controller-wide
// schedule for the named link. Call before traffic flows on the link; the
// decision at step N depends only on (seed, link, N) and the options in
// effect at that step.
func (c *Controller) SetLink(link string, o LinkOptions) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links[link] = o
}

// Wrap returns a client that applies the controller's schedule to every
// call on the named link. Multiple links may share a name (they then share
// sever state and a step counter).
func (c *Controller) Wrap(link string, inner rpc.Client) rpc.Client {
	return &client{ctl: c, link: link, inner: inner}
}

// Sever cuts the named link: every call fails with ErrSevered until Heal.
func (c *Controller) Sever(link string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed[link] = true
	c.events = append(c.events, Event{Link: link, Step: c.steps[link], Action: ActionSever})
}

// Heal restores a severed link.
func (c *Controller) Heal(link string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed[link] = false
	c.events = append(c.events, Event{Link: link, Step: c.steps[link], Action: ActionHeal})
}

// Severed reports whether the link is currently cut.
func (c *Controller) Severed(link string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed[link]
}

// Events returns a copy of the event log in occurrence order.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Fingerprint renders the event log canonically, one line per event,
// grouped per link in step order — convenient for asserting that two runs
// with the same seed replayed identically. Grouping matters: concurrent
// calls on different links may interleave differently from run to run, but
// each link's own stream is a pure function of (seed, link, step), so the
// per-link canonical form is replay-stable where raw occurrence order
// (Events) is not.
func (c *Controller) Fingerprint() string {
	evs := c.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Link != evs[j].Link {
			return evs[i].Link < evs[j].Link
		}
		return evs[i].Step < evs[j].Step
	})
	var b []byte
	for _, e := range evs {
		b = fmt.Appendf(b, "%s@%d:%s\n", e.Link, e.Step, e.Action)
	}
	return string(b)
}

// Next advances the named link's step counter and resolves the fault (if
// any) for this call — the decision surface for transports that are not
// rpc.Clients. The caller applies the outcome itself: error out on
// ActionReject/ActionDrop, hold delivery for Outcome.Delay on ActionDelay,
// deliver twice on ActionDup.
func (c *Controller) Next(link string) Outcome {
	return c.decide(link)
}

// Delays returns the resolved latencies of the link's delay events so far,
// in step order — with per-link Jitter this is the per-link delay sequence
// the replay property is asserted over.
func (c *Controller) Delays(link string) []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.delays[link]))
	copy(out, c.delays[link])
	return out
}

// decide advances the link's step counter and resolves the fault (if any)
// for this call from the pure (seed, link, step) function.
func (c *Controller) decide(link string) Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	step := c.steps[link]
	c.steps[link] = step + 1
	if c.severed[link] {
		c.events = append(c.events, Event{Link: link, Step: step, Action: ActionReject})
		return Outcome{Action: ActionReject}
	}
	o, ok := c.links[link]
	if !ok {
		o = LinkOptions{DropP: c.opts.DropP, DupP: c.opts.DupP, DelayP: c.opts.DelayP, Delay: c.opts.Delay}
	}
	// The draw order (drop, dup, delay, then jitter) is part of the replay
	// contract: reordering it would change every seeded schedule.
	r := rng{state: c.opts.Seed ^ hashLink(link) ^ (step * 0x9E3779B97F4A7C15)}
	var act Action
	switch {
	case o.DropP > 0 && r.float64() < o.DropP:
		act = ActionDrop
	case o.DupP > 0 && r.float64() < o.DupP:
		act = ActionDup
	case o.DelayP > 0 && r.float64() < o.DelayP:
		act = ActionDelay
	default:
		return Outcome{}
	}
	out := Outcome{Action: act}
	if act == ActionDelay {
		out.Delay = o.Delay
		if o.Jitter > 0 {
			out.Delay += time.Duration(r.float64() * float64(o.Jitter))
		}
		c.delays[link] = append(c.delays[link], out.Delay)
	}
	c.events = append(c.events, Event{Link: link, Step: step, Action: act})
	return out
}

// client applies the schedule to one link.
type client struct {
	ctl   *Controller
	link  string
	inner rpc.Client
}

// Call implements rpc.Client.
func (f *client) Call(msgType uint8, payload []byte) ([]byte, error) {
	out := f.ctl.decide(f.link)
	switch out.Action {
	case ActionReject:
		f.annotate(ActionReject, msgType, payload).End(trace.Default(), "reject", 0, 0)
		return nil, fmt.Errorf("%w: %s", ErrSevered, f.link)
	case ActionDrop:
		f.annotate(ActionDrop, msgType, payload).End(trace.Default(), "drop", 0, 0)
		return nil, fmt.Errorf("%w: %s", ErrDropped, f.link)
	case ActionDelay:
		// The span brackets the injected sleep, so the delay shows up as
		// an explicit fault.delay hop rather than unexplained rpc.call time.
		sp := f.annotate(ActionDelay, msgType, payload)
		f.ctl.opts.Sleep(out.Delay)
		sp.End(trace.Default(), "delay", 0, 0)
	case ActionDup:
		// Deliver twice; the first response is discarded (the duplicate a
		// retransmitting network would produce). Errors on the duplicate
		// are ignored — only the final delivery's outcome is reported.
		f.annotate(ActionDup, msgType, payload).End(trace.Default(), "dup", 0, 0)
		f.inner.Call(msgType, payload)
	}
	return f.inner.Call(msgType, payload)
}

// annotate opens a fault span on the call's trace context when the request
// carries a sampled envelope, so injected faults appear in the span tree of
// the traces they hit. Plain (untraced) calls return an inert span.
func (f *client) annotate(act Action, msgType uint8, payload []byte) trace.Started {
	tc, ok := rpc.TracedContext(msgType, payload)
	if !ok || !tc.Sampled() {
		return trace.Started{}
	}
	var stage string
	switch act {
	case ActionDrop:
		stage = "fault.drop"
	case ActionDelay:
		stage = "fault.delay"
	case ActionDup:
		stage = "fault.dup"
	case ActionReject:
		stage = "fault.reject"
	default:
		return trace.Started{}
	}
	return trace.Begin(tc, stage)
}

// Close implements rpc.Client (passes through; sever state is unaffected).
func (f *client) Close() error { return f.inner.Close() }

// hashLink folds a link name into the PRNG stream split.
func hashLink(link string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(link))
	return h.Sum64()
}

// rng is a splitmix64 stream — tiny, seedable, and stable across Go
// versions (math/rand's stream is not guaranteed), which the byte-for-byte
// replay property depends on.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
