package obsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("test_events_total", metrics.L("kind", "a")).Add(5)
	reg.Gauge("test_depth").Set(3)
	s := New(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + addr.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := startTestServer(t)
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, `test_events_total{kind="a"} 5`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE test_depth gauge") {
		t.Errorf("/metrics missing TYPE line:\n%s", body)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	_, base := startTestServer(t)
	code, body := get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s := snap.Find("test_events_total", map[string]string{"kind": "a"}); s == nil || s.Value != 5 {
		t.Errorf("snapshot counter = %+v", s)
	}
}

func TestHealthz(t *testing.T) {
	s, base := startTestServer(t)
	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("empty-check healthz = %d %s", code, body)
	}
	s.AddCheck("store", func() error { return nil })
	s.AddCheck("gossip", func() error { return errors.New("stale: no round in 3s") })
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz status = %d", code)
	}
	var report struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatal(err)
	}
	if report.Status != "unhealthy" || report.Checks["store"] != "ok" || !strings.Contains(report.Checks["gossip"], "stale") {
		t.Errorf("report = %+v", report)
	}
	// Recovery flips back to 200.
	s.AddCheck("gossip", func() error { return nil })
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("recovered healthz status = %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	_, base := startTestServer(t)
	code, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d (goroutine profile missing)", code)
	}
}

func TestCloseUnblocksPort(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still serving after Close")
	}
	if err := s.Close(); err != nil {
		t.Error("double close:", err)
	}
}
