package obsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("test_events_total", metrics.L("kind", "a")).Add(5)
	reg.Gauge("test_depth").Set(3)
	s := New(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + addr.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := startTestServer(t)
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, `test_events_total{kind="a"} 5`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE test_depth gauge") {
		t.Errorf("/metrics missing TYPE line:\n%s", body)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	_, base := startTestServer(t)
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s := snap.Find("test_events_total", map[string]string{"kind": "a"}); s == nil || s.Value != 5 {
		t.Errorf("snapshot counter = %+v", s)
	}
	if s := snap.Find("test_depth", nil); s == nil || s.Value != 3 || s.Kind != "gauge" {
		t.Errorf("snapshot gauge = %+v", s)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(reg)
	rec := trace.NewRecorder(128, "node-a")
	s.SetRecorder(rec)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + addr.String()

	now := time.Now().UnixNano()
	rec.Record(trace.Span{Trace: 0xabc, ID: 1, Stage: "client.append", Start: now, Dur: int64(20 * time.Millisecond)})
	rec.Record(trace.Span{Trace: 0xabc, ID: 2, Parent: 1, Stage: "maint.store", Start: now + 1, Dur: int64(time.Millisecond)})
	rec.Record(trace.Span{Trace: 0xdef, ID: 3, Stage: "client.append", Start: now + 2, Dur: int64(2 * time.Millisecond)})

	dump := func(query string) TraceDump {
		t.Helper()
		resp, err := http.Get(base + "/debug/trace" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/trace%s status = %d", query, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("/debug/trace Content-Type = %q", ct)
		}
		var d TraceDump
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return d
	}

	all := dump("")
	if all.Node != "node-a" || all.Total != 3 || len(all.Spans) != 3 {
		t.Fatalf("unfiltered dump = node %q total %d spans %d", all.Node, all.Total, len(all.Spans))
	}
	if byTrace := dump("?trace=abc"); len(byTrace.Spans) != 2 {
		t.Errorf("trace filter returned %d spans", len(byTrace.Spans))
	}
	if byStage := dump("?stage=maint.store"); len(byStage.Spans) != 1 || byStage.Spans[0].ID != 2 {
		t.Errorf("stage filter = %+v", byStage.Spans)
	}
	if slow := dump("?mindur=10ms"); len(slow.Spans) != 1 || slow.Spans[0].ID != 1 {
		t.Errorf("mindur filter = %+v", slow.Spans)
	}
	if limited := dump("?limit=1"); len(limited.Spans) != 1 || limited.Spans[0].ID != 3 {
		t.Errorf("limit filter = %+v", limited.Spans)
	}
	for _, q := range []string{"?trace=zzz", "?mindur=bogus", "?limit=-1"} {
		if code, _ := get(t, base+"/debug/trace"+q); code != http.StatusBadRequest {
			t.Errorf("/debug/trace%s status = %d, want 400", q, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, base := startTestServer(t)
	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("empty-check healthz = %d %s", code, body)
	}
	s.AddCheck("store", func() error { return nil })
	s.AddCheck("gossip", func() error { return errors.New("stale: no round in 3s") })
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz status = %d", code)
	}
	var report struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatal(err)
	}
	if report.Status != "unhealthy" || report.Checks["store"] != "ok" || !strings.Contains(report.Checks["gossip"], "stale") {
		t.Errorf("report = %+v", report)
	}
	// Recovery flips back to 200.
	s.AddCheck("gossip", func() error { return nil })
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("recovered healthz status = %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	_, base := startTestServer(t)
	code, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d (goroutine profile missing)", code)
	}
}

func TestCloseUnblocksPort(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still serving after Close")
	}
	if err := s.Close(); err != nil {
		t.Error("double close:", err)
	}
}
