// Package obsrv is the operator-facing observability surface of a running
// Chariots/FLStore process: one HTTP server exposing the process's metrics
// registry (Prometheus text at /metrics, JSON at /metrics.json), liveness
// and readiness at /healthz, the flight recorder at /debug/trace, and the
// Go runtime profiler under /debug/pprof/. Every long-running binary
// (cmd/flstore, cmd/chariots) mounts one of these next to its RPC
// endpoints.
package obsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Check is one named health probe. It returns nil when healthy; the error
// string is reported (but never logged with secrets) on /healthz.
type Check func() error

// Server serves the observability endpoints for one process.
type Server struct {
	reg *metrics.Registry
	rec *trace.Recorder
	mux *http.ServeMux

	mu     sync.Mutex
	checks map[string]Check
	ln     net.Listener
	srv    *http.Server
}

// New returns a server over reg with no health checks registered (an empty
// check set reports healthy) serving the process-wide flight recorder at
// /debug/trace.
func New(reg *metrics.Registry) *Server {
	s := &Server{reg: reg, rec: trace.Default(), checks: make(map[string]Check)}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// SetRecorder replaces the flight recorder /debug/trace serves (tests and
// multi-recorder processes). Call before Start.
func (s *Server) SetRecorder(r *trace.Recorder) { s.rec = r }

// AddCheck registers (or replaces) a named health probe.
func (s *Server) AddCheck(name string, c Check) {
	s.mu.Lock()
	s.checks[name] = c
	s.mu.Unlock()
}

// Handler exposes the endpoint mux so a deployment embedding its own HTTP
// server can mount the observability surface under it.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry this server exposes.
func (s *Server) Registry() *metrics.Registry { return s.reg }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.reg.Snapshot())
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status string            `json:"status"` // "ok" | "unhealthy"
	Checks map[string]string `json:"checks,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	checks := make(map[string]Check, len(s.checks))
	for name, c := range s.checks {
		checks[name] = c
	}
	s.mu.Unlock()

	report := healthReport{Status: "ok", Checks: make(map[string]string, len(checks))}
	names := make([]string, 0, len(checks))
	for name := range checks {
		names = append(names, name)
	}
	sort.Strings(names)
	code := http.StatusOK
	for _, name := range names {
		if err := checks[name](); err != nil {
			report.Checks[name] = err.Error()
			report.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		} else {
			report.Checks[name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(report)
}

// TraceDump is the /debug/trace response body: one node's retained spans
// after filtering. logctl trace joins dumps from every node of a
// deployment into one cross-process span tree.
type TraceDump struct {
	// Node names the process the dump came from.
	Node string `json:"node"`
	// Total counts spans ever recorded here, including ones the ring has
	// since evicted.
	Total uint64 `json:"total"`
	// Spans are the retained matching spans, oldest first.
	Spans []trace.Span `json:"spans"`
}

// handleTrace serves the flight recorder as JSON. Query parameters:
// trace (hex trace id), stage (exact stage name), mindur (Go duration,
// e.g. 50ms), limit (most recent N spans).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var f trace.Filter
	q := r.URL.Query()
	if v := q.Get("trace"); v != "" {
		t, err := trace.ParseTraceID(v)
		if err != nil {
			http.Error(w, "bad trace id: "+v, http.StatusBadRequest)
			return
		}
		f.Trace = t
	}
	f.Stage = q.Get("stage")
	if v := q.Get("mindur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "bad mindur: "+v, http.StatusBadRequest)
			return
		}
		f.MinDur = int64(d)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: "+v, http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	dump := TraceDump{Node: s.rec.Node(), Total: s.rec.Total(), Spans: s.rec.Snapshot(f)}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(dump)
}

// Start binds addr (":0" for ephemeral) and serves in a background
// goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr(), nil
}

// Close stops the HTTP server (no-op if never started).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
