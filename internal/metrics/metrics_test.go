package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(8*1000+8*10); got != want {
		t.Errorf("Value = %d, want %d", got, want)
	}
}

func TestThroughputSampler(t *testing.T) {
	var c Counter
	s := NewThroughputSampler(&c, 20*time.Millisecond)
	s.Start()
	s.Start() // double start must be a no-op
	deadline := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(deadline) {
		c.Add(100)
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // double stop must be safe
	samples := s.Samples()
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want >= 3", len(samples))
	}
	var total uint64
	for i, sm := range samples {
		total += sm.Count
		if sm.Rate < 0 {
			t.Errorf("sample %d has negative rate", i)
		}
		if i > 0 && sm.Elapsed <= samples[i-1].Elapsed {
			t.Errorf("samples not monotonic in time")
		}
	}
	if total == 0 {
		t.Error("sampler observed no events")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d", got)
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Errorf("median = %v, want ~50ms", got)
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("q0 = %v, want 1ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("q1 = %v, want 100ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramCap(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100 (count not capped)", got)
	}
}

func TestStopwatchRate(t *testing.T) {
	w := NewStopwatch()
	time.Sleep(20 * time.Millisecond)
	w.Stop()
	rate := w.Rate(1000)
	if rate <= 0 || rate > 1000/0.015 {
		t.Errorf("Rate = %v, implausible for 1000 events over >=20ms", rate)
	}
	if w.Elapsed() < 20*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 20ms", w.Elapsed())
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(129400); got != "129.4K" {
		t.Errorf("FormatRate = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Machine", "Throughput (Kappends/s)"}}
	tb.AddRow("Client", "129")
	tb.AddRow("Batcher", "129")
	out := tb.String()
	if !strings.Contains(out, "Machine") || !strings.Contains(out, "Batcher") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("got %d lines, want 4:\n%s", len(lines), out)
	}
}
