package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server-side half of the package: a concurrency-safe
// Registry of named, labeled time series — monotone counters, gauges, and
// fixed-bucket histograms — with Prometheus text exposition and a JSON
// snapshot. The experiment-side instruments above (ThroughputSampler, the
// reservoir Histogram, Stopwatch) stay as they are: they serve bounded
// offline runs, while the Registry serves long-running deployments scraped
// by operators.

// Label is one name=value dimension of a series. Series identity is the
// metric name plus the label set (order-insensitive).
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Gauge is a value that can go up and down, safe for concurrent use. The
// zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets are the default upper bounds (seconds) for latency
// histograms: 50µs to 10s, roughly ×2–2.5 per step — wide enough to span an
// in-memory append and a cross-continent WAN round trip.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// BatchBuckets are default upper bounds for record-count distributions
// (batch sizes, queue drains).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// BucketHistogram is a fixed-bucket histogram safe for concurrent use and
// bounded in memory regardless of how long the server runs — the server-path
// replacement for the reservoir Histogram, whose retained-prefix quantiles
// go stale once its capacity fills. Buckets are cumulative-rendered for
// Prometheus and mergeable across instances that share bounds.
type BucketHistogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated

	// Exemplar state: the slowest ObserveEx observation of the current
	// window, with the trace id that produced it — the link from a
	// histogram's tail to the flight recorder. Guarded by exMu; only the
	// ObserveEx path touches it, so plain Observe stays lock-free.
	exMu    sync.Mutex
	exTrace uint64
	exValue float64
	exAt    int64 // unix nanos the current exemplar was installed
}

// exemplarWindow bounds how long an exemplar survives without being
// beaten: after it, the next traced observation replaces it even if
// faster, so the exposed trace id stays recent enough to still be in the
// flight recorder's ring.
const exemplarWindow = int64(time.Minute)

// NewBucketHistogram returns a histogram with the given ascending upper
// bounds (LatencyBuckets when nil).
func NewBucketHistogram(bounds []float64) *BucketHistogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly ascending")
		}
	}
	return &BucketHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *BucketHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency observation in seconds.
func (h *BucketHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *BucketHistogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// ObserveEx is Observe plus an exemplar: when traceID is non-zero and the
// observation is the slowest of the current window (or the window
// expired), the (value, traceID) pair is retained and exposed in the JSON
// snapshot — the pointer from "this histogram has a slow tail" to "this
// trace shows why". traceID 0 degrades to plain Observe.
func (h *BucketHistogram) ObserveEx(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	now := time.Now().UnixNano()
	h.exMu.Lock()
	if v >= h.exValue || now-h.exAt > exemplarWindow {
		h.exTrace, h.exValue, h.exAt = traceID, v, now
	}
	h.exMu.Unlock()
}

// ObserveSinceEx records the seconds elapsed since start with an
// exemplar trace id (0 degrades to ObserveSince).
func (h *BucketHistogram) ObserveSinceEx(start time.Time, traceID uint64) {
	h.ObserveEx(time.Since(start).Seconds(), traceID)
}

// Exemplar returns the current exemplar (traceID 0 when none was ever
// recorded).
func (h *BucketHistogram) Exemplar() (traceID uint64, v float64) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exTrace, h.exValue
}

// Count returns the number of observations.
func (h *BucketHistogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *BucketHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *BucketHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// bucketCounts returns a point-in-time copy of the per-bucket counts
// (non-cumulative; last entry is the +Inf overflow bucket).
func (h *BucketHistogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket — the resolution an operator dashboard needs,
// at fixed memory. Observations in the +Inf bucket report the top bound.
func (h *BucketHistogram) Quantile(q float64) float64 {
	return quantileFromBuckets(h.bounds, h.bucketCounts(), q)
}

// Merge folds o's observations into h. The histograms must share bounds
// (per-shard histograms aggregated for a fleet view).
func (h *BucketHistogram) Merge(o *BucketHistogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d", i)
		}
	}
	for i := range o.counts {
		n := o.counts[i].Load()
		if n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(o.total.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

func quantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1] // +Inf bucket: report top bound
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// seriesKind discriminates the instrument behind a series.
type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []Label // sorted by Name
	kind   seriesKind
	c      *Counter
	g      *Gauge
	h      *BucketHistogram
	// fn backs function-based counters/gauges; atomic because scrapes
	// read it lock-free while re-registration may replace it.
	fn atomic.Pointer[func() float64]
}

// value returns the scalar value of a counter/gauge series.
func (s *series) value() float64 {
	if fn := s.fn.Load(); fn != nil {
		return (*fn)()
	}
	if s.c != nil {
		return float64(s.c.Value())
	}
	if s.g != nil {
		return s.g.Value()
	}
	return 0 // func-backed series scraped before its fn was stored
}

// Registry is a concurrency-safe collection of named, labeled series. It
// renders itself in Prometheus text format for scrapes and as JSON for
// programmatic consumers (logctl stats). The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series // key: name + canonical label signature
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

func canonical(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the existing series for (name, labels) or installs a new
// one built by mk. Kind mismatches across registrations are programming
// errors and panic.
func (r *Registry) register(name string, labels []Label, kind seriesKind, mk func() *series) *series {
	labels = canonical(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: series %q re-registered as %v (was %v)", name, kind, s.kind))
		}
		return s
	}
	s := mk()
	s.name = name
	s.labels = labels
	s.kind = kind
	r.series[key] = s
	return s
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Repeated calls with the same identity return the same counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.register(name, labels, kindCounter, func() *series {
		return &series{c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.register(name, labels, kindGauge, func() *series {
		return &series{g: &Gauge{}}
	}).g
}

// Histogram returns the bucketed histogram registered under name+labels,
// creating it with the given bounds (LatencyBuckets when nil) on first use.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *BucketHistogram {
	return r.register(name, labels, kindHistogram, func() *series {
		return &series{h: NewBucketHistogram(bounds)}
	}).h
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// the fit for state the system already tracks (channel depths, buffer sizes,
// head positions) where a stored gauge would just lag the truth. Re-
// registering the same identity replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	s := r.register(name, labels, kindGauge, func() *series { return &series{} })
	s.fn.Store(&fn)
}

// CounterFunc registers a counter whose value is read by fn at scrape time.
// fn must be monotone non-decreasing (it mirrors an existing Counter or
// equivalent). Re-registering the same identity replaces the function.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	s := r.register(name, labels, kindCounter, func() *series { return &series{} })
	s.fn.Store(&fn)
}

// snapshotSeries returns the registered series sorted by name then label
// signature — the deterministic order both renderers share.
func (r *Registry) snapshotSeries() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	keys := make(map[*series]string, len(r.series))
	for k, s := range r.series {
		out = append(out, s)
		keys[s] = k
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return keys[out[i]] < keys[out[j]] })
	return out
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} with extra pairs appended, or "" when
// empty.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (one # TYPE line per metric family, series sorted
// deterministically).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, labelString(s.labels), formatFloat(s.value()))
		case kindHistogram:
			counts := s.h.bucketCounts()
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(s.h.bounds) {
					le = formatFloat(s.h.bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, labelString(s.labels, L("le", le)), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(s.h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, labelString(s.labels), cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesSnapshot is the JSON form of one series at one instant.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value is the scalar for counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Histogram-only fields. Counts are per-bucket (not cumulative); the
	// final entry is the +Inf overflow bucket.
	Count  uint64    `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	// ExemplarTrace/ExemplarValue link the histogram to the flight
	// recorder: the hex trace id of the slowest recent traced observation
	// and its value (absent when no exemplar was recorded).
	ExemplarTrace string  `json:"exemplar_trace,omitempty"`
	ExemplarValue float64 `json:"exemplar_value,omitempty"`
}

// Quantile estimates the q-quantile of a histogram snapshot (0 for scalar
// series and empty histograms).
func (s SeriesSnapshot) Quantile(q float64) float64 {
	if s.Kind != "histogram" || len(s.Bounds) == 0 {
		return 0
	}
	return quantileFromBuckets(s.Bounds, s.Counts, q)
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// Find returns the first series with the given name whose labels include
// every pair in match (nil when absent).
func (sn Snapshot) Find(name string, match map[string]string) *SeriesSnapshot {
	for i := range sn.Series {
		s := &sn.Series[i]
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// Snapshot captures every series.
func (r *Registry) Snapshot() Snapshot {
	series := r.snapshotSeries()
	out := Snapshot{Series: make([]SeriesSnapshot, 0, len(series))}
	for _, s := range series {
		ss := SeriesSnapshot{Name: s.name, Kind: s.kind.String()}
		if len(s.labels) > 0 {
			ss.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				ss.Labels[l.Name] = l.Value
			}
		}
		switch s.kind {
		case kindCounter, kindGauge:
			ss.Value = s.value()
		case kindHistogram:
			ss.Count = s.h.Count()
			ss.Sum = s.h.Sum()
			ss.Bounds = append([]float64(nil), s.h.bounds...)
			ss.Counts = s.h.bucketCounts()
			if t, v := s.h.Exemplar(); t != 0 {
				ss.ExemplarTrace = strconv.FormatUint(t, 16)
				ss.ExemplarValue = v
			}
		}
		out.Series = append(out.Series, ss)
	}
	return out
}

// MarshalJSON renders the registry's snapshot (so a *Registry can be passed
// directly to json encoders).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
