package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGaugeSetAddSemantics(t *testing.T) {
	var g Gauge
	if v := g.Value(); v != 0 {
		t.Fatalf("zero gauge = %v", v)
	}
	g.Set(3.5)
	if v := g.Value(); v != 3.5 {
		t.Fatalf("after Set(3.5) = %v", v)
	}
	g.Add(1.5)
	if v := g.Value(); v != 5 {
		t.Fatalf("after Add(1.5) = %v", v)
	}
	g.Add(-7)
	if v := g.Value(); v != -2 {
		t.Fatalf("gauges must go negative; got %v", v)
	}
	g.Inc()
	g.Dec()
	g.Dec()
	if v := g.Value(); v != -3 {
		t.Fatalf("after Inc/Dec/Dec = %v", v)
	}
	g.Set(0.25) // Set overrides accumulated state
	if v := g.Value(); v != 0.25 {
		t.Fatalf("after final Set = %v", v)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("shard", "0"))
	b := r.Counter("x_total", L("shard", "0"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if c := r.Counter("x_total", L("shard", "1")); c == a {
		t.Error("different label value must be a distinct series")
	}
	// Label order must not matter for identity.
	h1 := r.Histogram("h_seconds", nil, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_seconds", nil, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Error("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", L("shard", "0"))
}

func TestBucketHistogramQuantileAndMerge(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-38.5) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %v, want within (2,4]", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("p100 (in +Inf bucket) = %v, want top bound 8", q)
	}
	o := NewBucketHistogram([]float64{1, 2, 4, 8})
	o.Observe(0.1)
	o.Observe(0.1)
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 10 {
		t.Fatalf("merged count = %d", h.Count())
	}
	bad := NewBucketHistogram([]float64{1, 2})
	if err := h.Merge(bad); err == nil {
		t.Error("merge with different bounds succeeded")
	}
}

// TestRegistryConcurrentScrape hammers registration, updates, and scrapes
// concurrently; run under -race this is the server-path safety test.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	shards := []string{"0", "1", "2", "3"}
	for _, shard := range shards {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("writes_total", L("shard", shard)).Inc()
				r.Gauge("depth", L("shard", shard)).Set(float64(i % 100))
				r.Histogram("lat_seconds", LatencyBuckets, L("shard", shard)).Observe(float64(i%10) / 1000)
				r.GaugeFunc("fn_gauge", func() float64 { return float64(i) }, L("shard", shard))
			}
		}(shard)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := json.Marshal(r); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := r.Snapshot()
	for _, shard := range shards {
		s := snap.Find("writes_total", map[string]string{"shard": shard})
		if s == nil || s.Value < 1 {
			t.Errorf("shard %s writes_total missing or zero: %+v", shard, s)
		}
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", L("code", "200")).Add(3)
	r.Counter("app_requests_total", L("code", "500")).Inc()
	r.Gauge("app_depth", L("q", `with"quote`)).Set(2.5)
	// Binary-exact observations so the _sum renders without float noise.
	h := r.Histogram("app_latency_seconds", []float64{0.25, 0.5, 1})
	h.Observe(0.125)
	h.Observe(0.125)
	h.Observe(0.75)
	r.GaugeFunc("app_head_lid", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE app_depth gauge
app_depth{q="with\"quote"} 2.5
# TYPE app_head_lid gauge
app_head_lid 42
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.25"} 2
app_latency_seconds_bucket{le="0.5"} 2
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 1
app_latency_seconds_count 3
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", L("m", "0")).Add(7)
	h := r.Histogram("d_seconds", []float64{0.1, 1}, L("m", "0"))
	h.Observe(0.05)
	h.Observe(0.5)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if s := snap.Find("n_total", map[string]string{"m": "0"}); s == nil || s.Value != 7 {
		t.Errorf("counter lost in round trip: %+v", s)
	}
	hs := snap.Find("d_seconds", map[string]string{"m": "0"})
	if hs == nil || hs.Count != 2 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}
	if q := hs.Quantile(0.99); q <= 0.1 || q > 1 {
		t.Errorf("round-tripped p99 = %v", q)
	}
}
