// Package metrics provides the measurement substrate for the evaluation:
// monotonic counters, windowed throughput samplers (the timeseries of
// Figure 9), and latency histograms.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Sample is one point of a throughput timeseries: the number of events
// observed in the window ending at Elapsed since the sampler started.
type Sample struct {
	Elapsed time.Duration
	Count   uint64
	Rate    float64 // events per second over the window
}

// ThroughputSampler periodically snapshots a Counter and records the
// per-window rate — the instrument behind the paper's Figure 9 timeseries.
type ThroughputSampler struct {
	mu      sync.Mutex
	counter *Counter
	window  time.Duration
	start   time.Time
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewThroughputSampler returns a sampler over c with the given window.
func NewThroughputSampler(c *Counter, window time.Duration) *ThroughputSampler {
	return &ThroughputSampler{
		counter: c,
		window:  window,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start begins sampling in a background goroutine. It may be called once.
func (s *ThroughputSampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.start = time.Now()
	s.mu.Unlock()

	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.window)
		defer ticker.Stop()
		prev := s.counter.Value()
		prevT := time.Now()
		for {
			select {
			case <-s.stop:
				return
			case now := <-ticker.C:
				cur := s.counter.Value()
				dt := now.Sub(prevT).Seconds()
				if dt <= 0 {
					continue
				}
				s.mu.Lock()
				s.samples = append(s.samples, Sample{
					Elapsed: now.Sub(s.start),
					Count:   cur - prev,
					Rate:    float64(cur-prev) / dt,
				})
				s.mu.Unlock()
				prev, prevT = cur, now
			}
		}
	}()
}

// Stop ends sampling and waits for the background goroutine to exit.
func (s *ThroughputSampler) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Samples returns a copy of the recorded timeseries.
func (s *ThroughputSampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Histogram records latency observations and reports quantiles from raw
// samples. Its retention is a capacity-capped prefix reservoir: the first
// Cap observations are kept verbatim and everything after only updates
// Count/Mean. Quantiles therefore describe the *first* Cap observations —
// exact for bounded experiment runs that size Cap to the run, but
// increasingly stale (biased toward startup behaviour) on a long-running
// server once the reservoir fills. Server paths must use the Registry's
// BucketHistogram instead, which is fixed-memory and current forever;
// this type remains for offline experiments that want exact quantiles.
type Histogram struct {
	mu  sync.Mutex
	v   []time.Duration
	cap int
	n   uint64
	sum time.Duration
}

// NewHistogram returns a histogram retaining at most capacity raw
// observations (default 1<<16 when capacity <= 0).
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Histogram{cap: capacity}
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.n++
	h.sum += d
	if len(h.v) < h.cap {
		h.v = append(h.v, d)
	}
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean of all observations (not only retained ones).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of retained observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.v) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Stopwatch measures sustained throughput of a closed operation window.
type Stopwatch struct {
	start time.Time
	end   time.Time
}

// NewStopwatch returns a started stopwatch.
func NewStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Stop freezes the stopwatch.
func (w *Stopwatch) Stop() { w.end = time.Now() }

// Elapsed returns the measured duration (to now if not stopped).
func (w *Stopwatch) Elapsed() time.Duration {
	if w.end.IsZero() {
		return time.Since(w.start)
	}
	return w.end.Sub(w.start)
}

// Rate returns events/sec for n events over the measured window.
func (w *Stopwatch) Rate(n uint64) float64 {
	s := w.Elapsed().Seconds()
	if s <= 0 {
		return 0
	}
	return float64(n) / s
}

// FormatRate renders a rate the way the paper's tables do, in Kappends/s.
func FormatRate(perSec float64) string {
	return fmt.Sprintf("%.1fK", perSec/1000)
}

// Table is a small helper for printing experiment tables aligned like the
// paper's (machine → throughput rows).
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
