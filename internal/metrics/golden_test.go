package metrics

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenFamilies is the canonical list of metric family names. It must
// stay in sync with both the registration sites in the source tree and
// the table in DESIGN.md §5.3 — TestMetricFamiliesGolden fails on drift
// in either direction, which is how the doc table went stale once before.
var goldenFamilies = []string{
	"chariots_applied_records_total",
	"chariots_applied_toid",
	"chariots_credit_capacity_records",
	"chariots_credit_high_water_records",
	"chariots_credit_in_use_records",
	"chariots_credit_shed_total",
	"chariots_credit_waits_total",
	"chariots_feed_records",
	"chariots_filter_dropped_total",
	"chariots_filter_overflow_total",
	"chariots_gc_collected_total",
	"chariots_gc_frontier_lid",
	"chariots_queue_applied_total",
	"chariots_queue_buffered_batches",
	"chariots_replication_lag_records",
	"chariots_replication_lag_seconds",
	"chariots_sender_errors_total",
	"chariots_sender_shipped_total",
	"chariots_stage_batch_records",
	"chariots_stage_inbox_batches",
	"chariots_stage_processed_total",
	"flstore_admission_backlog_budget_records",
	"flstore_admission_backlog_records",
	"flstore_admission_backlog_rejected_total",
	"flstore_admission_limiter_rejected_total",
	"flstore_append_seconds",
	"flstore_appends_total",
	"flstore_gossip_peer_silent",
	"flstore_gossip_round_age_seconds",
	"flstore_gossip_rounds_total",
	"flstore_head_lid",
	"flstore_hosted_ranges",
	"flstore_multi_reads_total",
	"flstore_next_lid",
	"flstore_order_buffer_records",
	"flstore_pending_assigned_slots",
	"flstore_range_batch_records",
	"flstore_range_reads_total",
	"flstore_range_records_total",
	"flstore_read_seconds",
	"flstore_rejected_total",
	"flstore_scan_calls_total",
	"flstore_store_scans_total",
	"flstore_stored_records",
	"flstore_tail_cache_hits_total",
	"flstore_tail_cache_misses_total",
	"flstore_tail_waits_total",
	"flstore_tail_wake_seconds",
	"replica_ack_seconds",
	"replica_append_failovers_total",
	"replica_appends_total",
	"replica_catchup_records_total",
	"replica_durable_watermark",
	"replica_evictions_total",
	"replica_fanout_failures_total",
	"replica_fanout_retries_total",
	"replica_invalidation_backlog",
	"replica_invalidations_total",
	"replica_local_read_blocks_total",
	"replica_local_read_hits_total",
	"replica_member_state",
	"replica_read_failovers_total",
	"replica_readmissions_total",
	"replica_valid_watermark",
	"rpc_client_backoff_seconds",
	"rpc_client_dial_failures_total",
	"rpc_client_dials_total",
	"rpc_client_redials_total",
	"rpc_client_retries_total",
	"rpc_server_bytes_in_total",
	"rpc_server_bytes_out_total",
	"rpc_server_call_seconds",
	"rpc_server_errors_total",
	"rpc_server_inflight_requests",
	"scale_offered_total",
	"scale_sessions_active",
	"scale_shed_total",
	"storage_commit_window_bytes",
	"storage_commit_window_waiters",
	"storage_disk_bytes",
	"storage_fsync_seconds",
	"storage_fsync_total",
	"storage_records",
	"storage_segments",
}

// familyPat matches a metric family name of one of the repo's prefixed
// namespaces, as a whole string literal (code) or backticked token (doc).
var familyPat = regexp.MustCompile(`^(rpc|flstore|replica|storage|chariots|scale)_[a-z][a-z0-9_]*$`)

func diffSets(t *testing.T, what string, got, want map[string]bool) {
	t.Helper()
	var missing, extra []string
	for name := range want {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	for name := range got {
		if !want[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("%s is missing families: %v", what, missing)
	}
	if len(extra) > 0 {
		t.Errorf("%s has families not in the golden list: %v", what, extra)
	}
}

func TestMetricFamiliesGolden(t *testing.T) {
	golden := make(map[string]bool, len(goldenFamilies))
	for _, name := range goldenFamilies {
		golden[name] = true
	}

	// 1. Every family name literal in non-test source must be golden, and
	// every golden family must appear somewhere in source.
	strLit := regexp.MustCompile(`"([a-z][a-z0-9_]*)"`)
	inCode := make(map[string]bool)
	for _, root := range []string{"../../internal", "../../cmd"} {
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range strLit.FindAllStringSubmatch(string(src), -1) {
				if familyPat.MatchString(m[1]) {
					inCode[m[1]] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	diffSets(t, "source tree", inCode, golden)

	// 2. The DESIGN.md §5.3 table must list exactly the golden families.
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	_, rest, found := strings.Cut(string(doc), "### 5.3")
	if !found {
		t.Fatal("DESIGN.md has no §5.3 section")
	}
	if i := strings.Index(rest, "\n### "); i >= 0 {
		rest = rest[:i]
	}
	tick := regexp.MustCompile("`([^`]+)`")
	inDoc := make(map[string]bool)
	for _, m := range tick.FindAllStringSubmatch(rest, -1) {
		for _, tok := range strings.Split(m[1], "/") {
			name := strings.TrimSpace(tok)
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			if familyPat.MatchString(name) {
				inDoc[name] = true
			}
		}
	}
	diffSets(t, "DESIGN.md §5.3", inDoc, golden)
}
