package streamproc

import (
	"sort"
	"sync"
)

// Windower aggregates events into fixed-size windows keyed by log
// position — the paper's analytics motivation ("click events... duration
// spent in each page") over the shared log. Windowing by LId rather than
// wall-clock gives every datacenter the *same* windows over the same log
// replica, so analyses are reproducible and site-independent for the
// prefix below the head.
type Windower struct {
	mu sync.Mutex
	// size is the window width in log positions.
	size uint64
	// counts[window][groupKey] accumulates event counts.
	counts map[uint64]map[string]uint64
	keyOf  func(Event) string
}

// NewWindower groups events into windows of size log positions by the
// given key extractor (e.g. the event's topic, a page id, a country).
func NewWindower(size uint64, keyOf func(Event) string) *Windower {
	if size < 1 {
		size = 1
	}
	return &Windower{
		size:   size,
		counts: make(map[uint64]map[string]uint64),
		keyOf:  keyOf,
	}
}

// Handler returns the ReaderGroup handler that feeds the windower.
func (w *Windower) Handler() Handler {
	return func(ev Event) error {
		win := (ev.LId - 1) / w.size
		key := w.keyOf(ev)
		w.mu.Lock()
		m := w.counts[win]
		if m == nil {
			m = make(map[string]uint64)
			w.counts[win] = m
		}
		m[key]++
		w.mu.Unlock()
		return nil
	}
}

// WindowCount returns the count of key in the window containing lid.
func (w *Windower) WindowCount(lid uint64, key string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.counts[(lid-1)/w.size][key]
}

// WindowStat is one (window, key, count) row of a report.
type WindowStat struct {
	Window uint64 // first LId of the window
	Key    string
	Count  uint64
}

// Report returns all accumulated rows ordered by (window, key).
func (w *Windower) Report() []WindowStat {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []WindowStat
	for win, m := range w.counts {
		for key, n := range m {
			out = append(out, WindowStat{Window: win*w.size + 1, Key: key, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Window != out[j].Window {
			return out[i].Window < out[j].Window
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TopK returns the k highest-count keys across all windows (ties broken
// lexicographically), a typical "hottest pages" analytics query.
func (w *Windower) TopK(k int) []WindowStat {
	w.mu.Lock()
	totals := make(map[string]uint64)
	for _, m := range w.counts {
		for key, n := range m {
			totals[key] += n
		}
	}
	w.mu.Unlock()
	out := make([]WindowStat, 0, len(totals))
	for key, n := range totals {
		out = append(out, WindowStat{Key: key, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
