package streamproc

import (
	"fmt"
	"testing"
	"time"
)

func TestWindowerBasics(t *testing.T) {
	w := NewWindower(10, func(ev Event) string { return ev.Topic })
	h := w.Handler()
	// Windows: [1,10] and [11,20].
	for lid := uint64(1); lid <= 15; lid++ {
		topic := "a"
		if lid%3 == 0 {
			topic = "b"
		}
		h(Event{Topic: topic, LId: lid})
	}
	if got := w.WindowCount(5, "a"); got != 7 {
		t.Errorf("window1[a] = %d, want 7", got)
	}
	if got := w.WindowCount(5, "b"); got != 3 {
		t.Errorf("window1[b] = %d, want 3", got)
	}
	if got := w.WindowCount(11, "a"); got != 3 {
		t.Errorf("window2[a] = %d, want 3", got)
	}
	report := w.Report()
	if len(report) != 4 {
		t.Fatalf("report rows = %d, want 4: %+v", len(report), report)
	}
	if report[0].Window != 1 || report[0].Key != "a" || report[0].Count != 7 {
		t.Errorf("report[0] = %+v", report[0])
	}
	top := w.TopK(1)
	if len(top) != 1 || top[0].Key != "a" || top[0].Count != 10 {
		t.Errorf("TopK = %+v", top)
	}
}

func TestWindowerZeroSizeClamped(t *testing.T) {
	w := NewWindower(0, func(ev Event) string { return "k" })
	w.Handler()(Event{LId: 1})
	if got := w.WindowCount(1, "k"); got != 1 {
		t.Errorf("count = %d", got)
	}
}

// TestWindowerEndToEnd runs window analytics over the live pipeline: every
// datacenter computing the same windows over its replica would see the
// same counts (here one DC; the determinism claim rests on LId windows).
func TestWindowerEndToEnd(t *testing.T) {
	dc := startDC(t, 0, 1)
	pub := NewPublisher(dc)
	w := NewWindower(25, func(ev Event) string { return ev.Topic })
	grp := NewReaderGroup("analytics", dc, w.Handler(), "pageview")
	grp.Start()
	defer grp.Stop()

	const n = 100
	for i := 0; i < n; i++ {
		pub.Publish("pageview", []byte(fmt.Sprintf("page-%d", i%5)))
	}
	waitFor(t, func() bool { return grp.Processed.Value() >= n }, 10*time.Second, "all pageviews")

	var total uint64
	for _, row := range w.Report() {
		total += row.Count
	}
	if total != n {
		t.Errorf("windowed total = %d, want %d", total, n)
	}
	top := w.TopK(3)
	if len(top) != 1 || top[0].Count != n {
		t.Errorf("TopK = %+v (single topic should dominate)", top)
	}
}
