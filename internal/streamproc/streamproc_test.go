package streamproc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
)

func streamCfg(self core.DCID, numDCs int) chariots.Config {
	return chariots.Config{
		Self:           self,
		NumDCs:         numDCs,
		Maintainers:    3,
		Indexers:       1,
		PlacementBatch: 8,
		FlushThreshold: 8,
		FlushInterval:  100 * time.Microsecond,
		SendThreshold:  8,
		SendInterval:   100 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	}
}

func startDC(t *testing.T, self core.DCID, numDCs int) *chariots.Datacenter {
	t.Helper()
	dc, err := chariots.New(streamCfg(self, numDCs))
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	t.Cleanup(dc.Stop)
	return dc
}

type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) handler(ev Event) error {
	c.mu.Lock()
	c.events = append(c.events, Event{Topic: ev.Topic, Origin: ev.Origin, LId: ev.LId,
		Payload: append([]byte(nil), ev.Payload...)})
	c.mu.Unlock()
	return nil
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func waitFor(t *testing.T, cond func() bool, timeout time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPublishAndConsume(t *testing.T) {
	dc := startDC(t, 0, 1)
	pub := NewPublisher(dc)
	col := &collector{}
	grp := NewReaderGroup("g1", dc, col.handler, "clicks")
	grp.Start()
	defer grp.Stop()

	const n = 200
	for i := 0; i < n; i++ {
		pub.Publish("clicks", []byte(fmt.Sprintf("click-%d", i)))
	}
	waitFor(t, func() bool { return col.len() >= n }, 10*time.Second, "all events")
	if got := grp.Processed.Value(); got != n {
		t.Errorf("Processed = %d, want %d", got, n)
	}
	// Events must arrive exactly once.
	seen := map[string]bool{}
	col.mu.Lock()
	for _, ev := range col.events {
		k := string(ev.Payload)
		if seen[k] {
			t.Fatalf("event %s delivered twice", k)
		}
		seen[k] = true
	}
	col.mu.Unlock()
}

func TestTopicFiltering(t *testing.T) {
	dc := startDC(t, 0, 1)
	pub := NewPublisher(dc)
	col := &collector{}
	grp := NewReaderGroup("g1", dc, col.handler, "wanted")
	grp.Start()
	defer grp.Stop()

	for i := 0; i < 50; i++ {
		pub.Publish("wanted", []byte{byte(i)})
		pub.Publish("unwanted", []byte{byte(i)})
	}
	waitFor(t, func() bool { return col.len() >= 50 }, 10*time.Second, "wanted events")
	time.Sleep(20 * time.Millisecond)
	if got := col.len(); got != 50 {
		t.Errorf("received %d events, want exactly 50", got)
	}
	if grp.Skipped.Value() == 0 {
		t.Error("no events skipped despite unsubscribed topic")
	}
}

func TestExactlyOnceAcrossRestart(t *testing.T) {
	dc := startDC(t, 0, 1)
	pub := NewPublisher(dc)

	col1 := &collector{}
	grp1 := NewReaderGroup("group", dc, col1.handler, "t")
	grp1.Start()
	const phase1 = 100
	for i := 0; i < phase1; i++ {
		pub.Publish("t", []byte(fmt.Sprintf("p1-%d", i)))
	}
	waitFor(t, func() bool { return col1.len() >= phase1 }, 10*time.Second, "phase 1")
	grp1.Stop() // give checkpoints a moment to land
	dc.Quiesce(30*time.Millisecond, 5*time.Second)

	// "Crash" and restart: a new group instance recovers checkpoints and
	// must not reprocess phase-1 events.
	col2 := &collector{}
	grp2 := NewReaderGroup("group", dc, col2.handler, "t")
	if err := grp2.Recover(); err != nil {
		t.Fatal(err)
	}
	grp2.Start()
	defer grp2.Stop()
	const phase2 = 60
	for i := 0; i < phase2; i++ {
		pub.Publish("t", []byte(fmt.Sprintf("p2-%d", i)))
	}
	waitFor(t, func() bool { return col2.len() >= phase2 }, 10*time.Second, "phase 2")
	time.Sleep(30 * time.Millisecond)

	col2.mu.Lock()
	defer col2.mu.Unlock()
	for _, ev := range col2.events {
		if string(ev.Payload[:2]) == "p1" {
			t.Fatalf("phase-1 event %q reprocessed after recovery", ev.Payload)
		}
	}
	if len(col2.events) != phase2 {
		t.Errorf("phase 2 delivered %d events, want %d", len(col2.events), phase2)
	}
}

func TestMultiDCStreams(t *testing.T) {
	a := startDC(t, 0, 2)
	b := startDC(t, 1, 2)
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	pubA := NewPublisher(a)
	pubB := NewPublisher(b)
	col := &collector{}
	// The analysis runs at A but must see B's events too.
	grp := NewReaderGroup("join", a, col.handler, "events")
	grp.Start()
	defer grp.Stop()

	const n = 60
	for i := 0; i < n; i++ {
		pubA.Publish("events", []byte(fmt.Sprintf("A-%d", i)))
		pubB.Publish("events", []byte(fmt.Sprintf("B-%d", i)))
	}
	waitFor(t, func() bool { return col.len() >= 2*n }, 15*time.Second, "both streams")
	// Origin attribution must be correct.
	col.mu.Lock()
	defer col.mu.Unlock()
	origins := map[core.DCID]int{}
	for _, ev := range col.events {
		origins[ev.Origin]++
	}
	if origins[0] != n || origins[1] != n {
		t.Errorf("origin counts = %v, want %d each", origins, n)
	}
}

func TestPhotonStyleJoin(t *testing.T) {
	a := startDC(t, 0, 2)
	b := startDC(t, 1, 2)
	a.ConnectTo(1, b.Receivers())
	b.ConnectTo(0, a.Receivers())

	// Clicks arrive at A, queries at B (Photon's setup); the join runs
	// at A over the replicated log.
	var mu sync.Mutex
	matches := map[string]bool{}
	join := NewJoin("clicks", "queries",
		func(ev Event) string { return string(ev.Payload) },
		func(key string, l, r Event) {
			mu.Lock()
			if matches[key] {
				t.Errorf("pair %s emitted twice", key)
			}
			matches[key] = true
			mu.Unlock()
		})
	grp := NewReaderGroup("join", a, join.Handler(), "clicks", "queries")
	grp.Start()
	defer grp.Stop()

	pubA := NewPublisher(a)
	pubB := NewPublisher(b)
	const n = 40
	for i := 0; i < n; i++ {
		pubA.Publish("clicks", []byte(fmt.Sprintf("id-%d", i)))
		pubB.Publish("queries", []byte(fmt.Sprintf("id-%d", i)))
	}
	waitFor(t, func() bool { return join.Matched.Value() >= n }, 15*time.Second, "all joins")
	if join.PendingLeft() != 0 || join.PendingRight() != 0 {
		t.Errorf("unmatched leftovers: %d left, %d right", join.PendingLeft(), join.PendingRight())
	}
}

func TestHandlerErrorStopsGroup(t *testing.T) {
	dc := startDC(t, 0, 1)
	pub := NewPublisher(dc)
	grp := NewReaderGroup("g", dc, func(ev Event) error {
		return fmt.Errorf("poison")
	}, "t")
	grp.Start()
	pub.Publish("t", []byte("boom"))
	waitFor(t, func() bool { return grp.Err() != nil }, 10*time.Second, "handler error")
	grp.Stop()
	if grp.Err() == nil {
		t.Fatal("error not surfaced")
	}
}

func TestCheckpointCodec(t *testing.T) {
	buf := encodeCheckpoint(3, 999)
	part, lid, ok := decodeCheckpoint(buf)
	if !ok || part != 3 || lid != 999 {
		t.Errorf("decode = %d,%d,%v", part, lid, ok)
	}
	if _, _, ok := decodeCheckpoint([]byte("short")); ok {
		t.Error("short checkpoint accepted")
	}
}
