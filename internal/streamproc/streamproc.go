// Package streamproc implements the multi-datacenter event-processing
// case study (§4.2): publishers append events to the Chariots log;
// partitioned reader groups consume them exactly once, without a
// centralized dispatcher, by each reading a different log maintainer and
// checkpointing progress back into the log itself.
package streamproc

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
)

const (
	topicTagKey = "topic"
	ckptTagKey  = "streamproc-ckpt"
)

// Event is one decoded stream event.
type Event struct {
	Topic string
	// Origin is the datacenter whose application produced the event —
	// multi-datacenter joins (the Photon-style motivation) group on it.
	Origin  core.DCID
	LId     uint64
	Payload []byte
}

// Publisher appends events to the shared log. Publishing is exactly an
// Append — the log supplies persistence, replication and ordering.
type Publisher struct {
	dc *chariots.Datacenter
	// Published counts events appended.
	Published metrics.Counter
}

// NewPublisher returns a publisher over the datacenter.
func NewPublisher(dc *chariots.Datacenter) *Publisher { return &Publisher{dc: dc} }

// Publish appends one event without waiting for its log position.
func (p *Publisher) Publish(topic string, payload []byte) {
	p.dc.AppendAsync(payload, []core.Tag{{Key: topicTagKey, Value: topic}})
	p.Published.Inc()
}

// publishRetries bounds how many shed rejections (the datacenter's
// admission control under Config.ShedOnSaturation) PublishWait absorbs
// before surfacing the error; waits honor the server's retry hint.
const publishRetries = 8

// PublishWait appends one event and returns its log ids, retrying paced
// when the datacenter's admission control sheds the append.
func (p *Publisher) PublishWait(topic string, payload []byte) (chariots.AppendAck, error) {
	ack, err := flstore.Retry(publishRetries, func() (chariots.AppendAck, error) {
		return p.dc.Append(payload, []core.Tag{{Key: topicTagKey, Value: topic}})
	})
	if err == nil {
		p.Published.Inc()
	}
	return ack, err
}

// Handler processes one event. Returning an error stops the reader with
// that error; the event is not checkpointed and will be redelivered.
type Handler func(Event) error

// ReaderGroup consumes the log with one reader per log maintainer (§4.2:
// "readers can read from different log maintainers... without the need of
// a centralized dispatcher"). Progress is checkpointed as records appended
// to the log, so a restarted group resumes exactly after the last
// processed position of each partition — exactly-once processing of every
// event below the head of the log.
type ReaderGroup struct {
	name    string
	dc      *chariots.Datacenter
	handler Handler
	topics  map[string]bool // nil = all topics

	mu      sync.Mutex
	cursors []uint64 // per maintainer: highest processed LId
	stop    chan struct{}
	done    chan struct{}
	started bool
	err     error

	// Processed counts events handled; Skipped counts records that were
	// not subscribed events (other topics, checkpoints, foreign data).
	Processed metrics.Counter
	Skipped   metrics.Counter
}

// NewReaderGroup builds a reader group. topics restricts consumption (nil
// or empty = every topic). name namespaces the group's checkpoints.
func NewReaderGroup(name string, dc *chariots.Datacenter, handler Handler, topics ...string) *ReaderGroup {
	g := &ReaderGroup{
		name:    name,
		dc:      dc,
		handler: handler,
		cursors: make([]uint64, len(dc.Maintainers())),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if len(topics) > 0 {
		g.topics = make(map[string]bool, len(topics))
		for _, t := range topics {
			g.topics[t] = true
		}
	}
	return g
}

// Recover loads the group's checkpoints from the log, so a new instance
// resumes where a crashed one stopped.
func (g *ReaderGroup) Recover() error {
	recs, err := g.dc.Reader().Read(core.Rule{
		TagKey:   ckptTagKey,
		TagCmp:   core.CmpEQ,
		TagValue: g.name,
	})
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, rec := range recs {
		part, lid, ok := decodeCheckpoint(rec.Body)
		if !ok || part >= len(g.cursors) {
			continue
		}
		if lid > g.cursors[part] {
			g.cursors[part] = lid
		}
	}
	return nil
}

// Start launches one reader goroutine per maintainer partition.
func (g *ReaderGroup) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	g.mu.Unlock()
	var wg sync.WaitGroup
	for part := range g.cursors {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			g.readPartition(part)
		}(part)
	}
	go func() {
		wg.Wait()
		close(g.done)
	}()
}

// Stop halts the readers and waits for them.
func (g *ReaderGroup) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}

// Err returns the handler error that stopped the group, if any.
func (g *ReaderGroup) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Cursor returns the highest processed LId of a partition.
func (g *ReaderGroup) Cursor(part int) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cursors[part]
}

// readPartition subscribes one partition to the log: it parks on the
// reader's head-advance long-poll (no fixed poll tick) and drains the
// partition's share of each newly covered window with one batched range
// read, processing subscribed events in LId order and checkpointing after
// each batch. Every owned position at or below the window's head is
// guaranteed delivered, so advancing the cursor to the head preserves
// exactly-once processing.
func (g *ReaderGroup) readPartition(part int) {
	reader := g.dc.Reader()
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		g.mu.Lock()
		cursor := g.cursors[part]
		g.mu.Unlock()
		// The bounded wait keeps Stop() responsive; a timed-out round
		// simply re-parks.
		head, err := reader.WaitHead(cursor+1, 5*time.Millisecond)
		if err != nil {
			g.fail(err)
			return
		}
		if head <= cursor {
			continue
		}
		recs, err := reader.ReadRangeOwned(part, cursor+1, head)
		if err != nil {
			g.fail(err)
			return
		}
		processedAny := false
		for _, rec := range recs {
			topic, ok := rec.TagValue(topicTagKey)
			if !ok || (g.topics != nil && !g.topics[topic]) {
				g.Skipped.Inc()
				continue
			}
			ev := Event{Topic: topic, Origin: rec.Host, LId: rec.LId, Payload: rec.Body}
			if err := g.handler(ev); err != nil {
				g.fail(fmt.Errorf("streamproc: handler at LId %d: %w", rec.LId, err))
				return
			}
			g.Processed.Inc()
			processedAny = true
		}
		g.mu.Lock()
		g.cursors[part] = head
		g.mu.Unlock()
		if processedAny {
			g.checkpoint(part, head)
		}
	}
}

func (g *ReaderGroup) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// checkpoint appends the partition's progress to the log. The checkpoint
// is itself a log record: replicated, persistent, and totally ordered
// after the events it covers.
func (g *ReaderGroup) checkpoint(part int, lid uint64) {
	g.dc.AppendAsync(encodeCheckpoint(part, lid),
		[]core.Tag{{Key: ckptTagKey, Value: g.name}})
}

func encodeCheckpoint(part int, lid uint64) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, uint32(part))
	binary.LittleEndian.PutUint64(buf[4:], lid)
	return buf
}

func decodeCheckpoint(body []byte) (part int, lid uint64, ok bool) {
	if len(body) != 12 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(body)), binary.LittleEndian.Uint64(body[4:]), true
}

// Join is a Photon-style continuous join (the paper's multi-datacenter
// motivation): it pairs events of two topics by a join key extracted from
// the payload, emitting a joined pair exactly once regardless of which
// datacenter produced each side.
type Join struct {
	mu      sync.Mutex
	keyOf   func(Event) string
	left    map[string]Event
	right   map[string]Event
	lTopic  string
	rTopic  string
	emit    func(key string, l, r Event)
	Matched metrics.Counter
}

// NewJoin builds a join of two topics on keyOf, calling emit per match.
func NewJoin(leftTopic, rightTopic string, keyOf func(Event) string, emit func(key string, l, r Event)) *Join {
	return &Join{
		keyOf:  keyOf,
		left:   make(map[string]Event),
		right:  make(map[string]Event),
		lTopic: leftTopic,
		rTopic: rightTopic,
		emit:   emit,
	}
}

// Handler returns the Handler to install in a ReaderGroup subscribed to
// both topics.
func (j *Join) Handler() Handler {
	return func(ev Event) error {
		key := j.keyOf(ev)
		j.mu.Lock()
		defer j.mu.Unlock()
		switch ev.Topic {
		case j.lTopic:
			if other, ok := j.right[key]; ok {
				delete(j.right, key)
				j.Matched.Inc()
				j.emit(key, ev, other)
			} else {
				j.left[key] = ev
			}
		case j.rTopic:
			if other, ok := j.left[key]; ok {
				delete(j.left, key)
				j.Matched.Inc()
				j.emit(key, other, ev)
			} else {
				j.right[key] = ev
			}
		}
		return nil
	}
}

// PendingLeft and PendingRight expose unmatched buffer sizes.
func (j *Join) PendingLeft() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.left)
}

// PendingRight returns the number of unmatched right-side events.
func (j *Join) PendingRight() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.right)
}
