# Tier-1 gate: `make check` is what CI and pre-merge runs — build, vet,
# the full test suite, and a race pass over the hot-path packages whose
# buffer-reuse discipline is easiest to get wrong. `make race` is the
# slower full-suite race pass.
GO ?= go

# Per-target budget for the fuzz smoke pass (long campaigns run manually).
FUZZTIME ?= 5s

.PHONY: build test race vet check fuzz-smoke bench-smoke bench-read

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test
	$(GO) test -race ./internal/wire ./internal/core ./internal/storage ./internal/replica ./internal/faultinject
	$(GO) test -race -run 'Replicated|ReplicaAppend|SeededKill|GossipHeadResumes|TailSurvives|TailZeroFullScans' ./internal/flstore

# fuzz-smoke runs each codec fuzz target briefly: enough to catch decoder
# regressions on corrupt input without a long campaign.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecodeRecord$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz='^FuzzDecodeRecords$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz='^FuzzDecodeRangeResult$$' -fuzztime=$(FUZZTIME) ./internal/flstore

# bench-smoke runs the allocation-budget benchmarks once; the AllocsPerRun
# assertions in the regular tests enforce the budgets, this shows the numbers.
bench-smoke:
	$(GO) test -run='^$$' -bench='Allocs$$' -benchmem -benchtime=100x ./internal/flstore ./internal/chariots

# bench-read runs the read-path benchmarks: batched range read vs single
# reads, cached tail reads, and push vs poll tailing. The corresponding
# budgets are enforced by TestReadRangeAllocBudget / TestTailCachedReadAllocBudget.
bench-read:
	$(GO) test -run='^$$' -bench='ReadRange|SingleReads|TailCached|TailPushVsPoll' -benchmem -benchtime=100x ./internal/flstore
