# Tier-1 gate: `make check` is what CI and pre-merge runs — build, vet,
# the full test suite, and a race pass over the hot-path packages whose
# buffer-reuse discipline is easiest to get wrong. `make race` is the
# slower full-suite race pass.
GO ?= go

# Per-target budget for the fuzz smoke pass (long campaigns run manually).
FUZZTIME ?= 5s

.PHONY: build test race vet check fuzz-smoke bench-smoke bench-read bench-scale bench-durability bench-elastic trace-smoke api-snapshot api-check

# The public surface of the client-facing packages, as sorted declaration
# lines from `go doc -all`. api-check fails when the surface drifts from
# the committed snapshot; regenerate deliberately with api-snapshot.
API_PKGS = flstore chariots
api_decl = $(GO) doc -all ./internal/$(1) | grep -E '^(func|type|var|const)' | LC_ALL=C sort

api-snapshot:
	@mkdir -p api
	@for p in $(API_PKGS); do \
		$(call api_decl,$$p) > api/$$p.txt || exit 1; \
		echo "api/$$p.txt written"; \
	done

api-check:
	@for p in $(API_PKGS); do \
		$(call api_decl,$$p) > api/$$p.txt.got || exit 1; \
		if ! diff -u api/$$p.txt api/$$p.txt.got; then \
			rm -f api/$$p.txt.got; \
			echo "API surface of internal/$$p drifted from api/$$p.txt."; \
			echo "Run 'make api-snapshot' and commit if the change is intended."; \
			exit 1; \
		fi; \
		rm -f api/$$p.txt.got; \
	done
	@echo "api surface matches snapshots"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test api-check trace-smoke bench-scale bench-durability bench-elastic
	$(GO) test -race ./internal/wire ./internal/core ./internal/storage ./internal/replica ./internal/faultinject ./internal/scale
	$(GO) test -race -run 'Replicated|ReplicaAppend|SeededKill|GossipHeadResumes|TailSurvives|TailZeroFullScans' ./internal/flstore

# trace-smoke proves the tracing layer end to end: the span trees of a
# reduced tracelat run must cover client → pipeline → maintainer →
# replica ack and attribute >= 90% of the measured append latency, and
# the untraced append path must stay inside its allocation budgets.
trace-smoke:
	$(GO) test -run 'TraceSmoke' -count=1 ./internal/cluster
	$(GO) test -run 'AllocBudget' -count=1 ./internal/flstore ./internal/chariots

# bench-scale is the scale-harness smoke: a reduced steady run over the
# emulated 2-DC WAN plus the partition/heal replay (two same-seed runs
# must produce byte-identical event logs and converge after heal). The
# full-size scenarios (>= 10K sessions) run via `repro -exp scale`.
bench-scale:
	$(GO) test -run 'TestScaleSteadySmoke|TestScalePartitionHealReplay' -count=1 ./internal/scale

# bench-durability is the durability-tier smoke: a reduced run of both
# phases — per-batch vs group-commit fsync arms (the group arms must
# collapse fsyncs/op below 1 at 8+ appenders) and the three quorum-ack
# cluster arms — asserting the artifact's ledger and shape invariants.
# The full acceptance ratios (group p99 <= 0.5x per-batch at 64
# appenders, slow-disk quorum p99 <= 2x healthy) run via
# `repro -exp durability`.
bench-durability:
	$(GO) test -run 'TestDurabilitySmoke' -count=1 ./internal/cluster

# bench-elastic is the live-elasticity smoke: a shortened three-phase run
# where the offered load doubles past the old member set's capacity, the
# autoscaler fires an online epoch switchover, and the run must end with
# an intact log (no lost or duplicated LIds, migration complete) and
# bounded post-flip append p99. The full-size run is `repro -exp elastic`.
bench-elastic:
	$(GO) test -run 'TestElasticSmoke' -count=1 ./internal/cluster

# fuzz-smoke runs each codec fuzz target briefly: enough to catch decoder
# regressions on corrupt input without a long campaign.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecodeRecord$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz='^FuzzDecodeRecords$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz='^FuzzDecodeRangeResult$$' -fuzztime=$(FUZZTIME) ./internal/flstore
	$(GO) test -fuzz='^FuzzArchiveVolumeDecode$$' -fuzztime=$(FUZZTIME) ./internal/storage

# bench-smoke runs the allocation-budget benchmarks once; the AllocsPerRun
# assertions in the regular tests enforce the budgets, this shows the numbers.
bench-smoke:
	$(GO) test -run='^$$' -bench='Allocs$$' -benchmem -benchtime=100x ./internal/flstore ./internal/chariots

# bench-read runs the read-path benchmarks: batched range read vs single
# reads, cached tail reads, and push vs poll tailing. The corresponding
# budgets are enforced by TestReadRangeAllocBudget / TestTailCachedReadAllocBudget.
# The read-scaling smoke drives a miniature replica-count sweep (R=1 and
# R=3 over real TCP) end to end; the ≥2× throughput bar itself is enforced
# by `repro -exp readpath` with full budgets.
bench-read:
	$(GO) test -run='^$$' -bench='ReadRange|SingleReads|TailCached|TailPushVsPoll' -benchmem -benchtime=100x ./internal/flstore
	$(GO) test -run 'TestReadScalingSweepSmoke' -count=1 ./internal/cluster
