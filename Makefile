# Tier-1 gate: `make check` is what CI and pre-merge runs — build, vet,
# and the full test suite. `make race` is the slower full-suite race pass.
GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test
