// Command chariots runs one Chariots datacenter: the full §6.2 pipeline
// (batchers → filters → queues → FLStore maintainers → senders/receivers)
// with TCP endpoints for application clients (ingest) and for the other
// datacenters (replication).
//
// A two-datacenter deployment on one machine:
//
//	go run ./cmd/chariots -dc 0 -dcs 2 -listen 127.0.0.1:8000 \
//	    -peer 1=127.0.0.1:9001 &
//	go run ./cmd/chariots -dc 1 -dcs 2 -listen 127.0.0.1:9000 \
//	    -peer 0=127.0.0.1:8001 &
//
// Ports: ingest on -listen, receivers on port+1, +2, ... (one per
// receiver machine). -peer maps a remote datacenter id to its first
// receiver address; peers may be started in any order (connections retry).
//
// Observability: pipeline, FLStore, and RPC metrics are served over HTTP on
// -metrics (default: ingest port + 100) at /metrics (Prometheus text),
// /metrics.json, /healthz, and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obsrv"
	"repro/internal/rpc"
	"repro/internal/trace"
)

type peerFlag map[core.DCID]string

func (p peerFlag) String() string { return fmt.Sprint(map[core.DCID]string(p)) }

func (p peerFlag) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("peer %q: want <dcid>=<host:port>", v)
	}
	n, err := strconv.Atoi(id)
	if err != nil {
		return fmt.Errorf("peer %q: bad dc id: %w", v, err)
	}
	p[core.DCID(n)] = addr
	return nil
}

func main() {
	var (
		self      = flag.Int("dc", 0, "this datacenter's id (0-based)")
		dcs       = flag.Int("dcs", 1, "total number of datacenters")
		listen    = flag.String("listen", "127.0.0.1:8000", "ingest listen address; receivers use consecutive ports")
		batchers  = flag.Int("batchers", 2, "batcher machines")
		filters   = flag.Int("filters", 2, "filter machines")
		queues    = flag.Int("queues", 2, "queue machines")
		maints    = flag.Int("maintainers", 3, "log maintainer machines")
		senders   = flag.Int("senders", 2, "sender machines")
		receivers = flag.Int("receivers", 2, "receiver machines")
		indexers  = flag.Int("indexers", 1, "indexer machines (tag reads)")
		credits   = flag.Int("credits", 0, "pipeline credit bound in records (0 = default 32768, negative = unbounded)")
		shed      = flag.Bool("shed", false, "reject appends when the credit bound is hit instead of blocking")
		metricsA  = flag.String("metrics", "", `metrics HTTP listen address ("" = ingest port + 100, "off" = disabled)`)
		trSample  = flag.Uint("trace-sample", 1024, "record one in N operations into the flight recorder (0 = tracing off)")
		trSlow    = flag.Duration("trace-slow", 50*time.Millisecond, "force-sample and log operations slower than this (0 = disabled)")
		peers     = peerFlag{}
	)
	flag.Var(peers, "peer", "remote datacenter receiver endpoint, <dcid>=<host:port>; repeatable")
	flag.Parse()
	trace.SetSampling(uint32(*trSample))
	trace.SetSlowOpThreshold(*trSlow)
	trace.SetNodeName(fmt.Sprintf("dc%d@%s", *self, *listen))

	if err := run(*self, *dcs, *listen, *batchers, *filters, *queues, *maints, *senders, *receivers, *indexers, *credits, *shed, *metricsA, peers); err != nil {
		log.Fatal(err)
	}
}

func run(self, dcs int, listen string, batchers, filters, queues, maints, senders, receivers, indexers, credits int, shed bool, metricsAddr string, peers peerFlag) error {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return fmt.Errorf("bad -listen: %w", err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("bad -listen port: %w", err)
	}

	dc, err := chariots.New(chariots.Config{
		Self:             core.DCID(self),
		NumDCs:           dcs,
		Batchers:         batchers,
		Filters:          filters,
		Queues:           queues,
		Maintainers:      maints,
		Senders:          senders,
		Receivers:        receivers,
		Indexers:         indexers,
		PipelineCredits:  credits,
		ShedOnSaturation: shed,
	})
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	dc.EnableMetrics(reg) // before Start: stage hooks install unsynchronized

	// Receiver endpoints.
	var servers []*rpc.Server
	for i, rx := range dc.Receivers() {
		srv := rpc.NewServer()
		srv.EnableMetrics(reg, fmt.Sprintf("receiver-%d", i))
		chariots.ServeReceiver(srv, rx)
		a := net.JoinHostPort(host, strconv.Itoa(basePort+1+i))
		if _, err := srv.Listen(a); err != nil {
			return fmt.Errorf("receiver %d: %w", i, err)
		}
		servers = append(servers, srv)
		log.Printf("DC%d receiver %d listening on %s", self, i, a)
	}

	// Ingest endpoint for application clients.
	ingestSrv := rpc.NewServer()
	ingestSrv.EnableMetrics(reg, "ingest")
	chariots.ServeIngest(ingestSrv, dc)
	if _, err := ingestSrv.Listen(listen); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	servers = append(servers, ingestSrv)
	log.Printf("DC%d ingest listening on %s", self, listen)

	dc.Start()

	// Peer links use reconnecting clients: replication is idempotent
	// (remote filters deduplicate by TOId), so retry-once is safe, and a
	// flapping WAN link heals without operator action.
	for remote, addr := range peers {
		conn := rpc.NewReconnecting(addr, true)
		conn.EnableMetrics(reg, fmt.Sprintf("dc%d", remote))
		dc.ConnectTo(remote, []chariots.ReceiverAPI{chariots.NewReceiverClient(conn)})
		log.Printf("DC%d will replicate to DC%d at %s", self, remote, addr)
	}

	// Metrics/health HTTP endpoint.
	var obs *obsrv.Server
	if metricsAddr != "off" {
		if metricsAddr == "" {
			metricsAddr = net.JoinHostPort(host, strconv.Itoa(basePort+100))
		}
		obs = obsrv.New(reg)
		obs.AddCheck("head", func() error {
			_, err := dc.Head()
			return err
		})
		a, err := obs.Start(metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		log.Printf("DC%d metrics on http://%s/metrics (healthz, pprof alongside)", self, a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if obs != nil {
		obs.Close()
	}
	dc.Stop()
	for _, s := range servers {
		s.Close()
	}
	return nil
}
