// Command logctl is the operator's client for a running FLStore deployment
// (cmd/flstore): append records, read by position or tag, inspect the head
// of the log, and tail the log live.
//
//	logctl -controller 127.0.0.1:7000 append -tag user=alice "first post"
//	logctl -controller 127.0.0.1:7000 read 5
//	logctl -controller 127.0.0.1:7000 head
//	logctl -controller 127.0.0.1:7000 lookup -tag user=alice -recent 10
//	logctl -controller 127.0.0.1:7000 tail -from 1
//	logctl -controller 127.0.0.1:7000 stats -interval 1s
//	logctl -controller 127.0.0.1:7000 replicas
//	logctl -controller 127.0.0.1:7000 epochs
//	logctl -controller 127.0.0.1:7000 grow -maintainers 4
//	logctl trace -nodes 127.0.0.1:7070,127.0.0.1:7071 -mindur 1ms
//
// The stats, reads, replicas, epochs, and grow subcommands ride the typed
// flstore.Admin client; logctl never decodes admin wire messages itself.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/obsrv"
	"repro/internal/rpc"
	"repro/internal/trace"
)

func main() {
	controller := flag.String("controller", "127.0.0.1:7000", "controller address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	// trace talks to the nodes' observability endpoints directly; it needs
	// no controller session.
	if args[0] == "trace" {
		cmdTrace(args[1:])
		return
	}
	// Operator operations are rare, so sample them all: the contexts
	// propagate over the wire and the server-side spans land in the nodes'
	// flight recorders, where `logctl trace` can find them afterwards.
	trace.SetSampling(1)

	conn, err := rpc.Dial(*controller)
	if err != nil {
		log.Fatalf("dialing controller: %v", err)
	}
	defer conn.Close()
	cmd, rest := args[0], args[1:]

	// Admin subcommands need no data-plane session; everything else builds
	// an flstore.Client on top of the same connection.
	admin := flstore.NewAdmin(conn)
	switch cmd {
	case "stats":
		cmdStats(admin, rest)
		return
	case "reads":
		cmdReads(admin, rest)
		return
	case "replicas":
		cmdReplicas(admin)
		return
	case "epochs":
		cmdEpochs(admin)
		return
	case "grow":
		cmdGrow(admin, rest)
		return
	}

	client, err := flstore.NewClient(flstore.NewControllerClient(conn))
	if err != nil {
		log.Fatalf("session init: %v", err)
	}
	switch cmd {
	case "append":
		cmdAppend(client, rest)
	case "read":
		cmdRead(client, rest)
	case "head":
		cmdHead(client)
	case "lookup":
		cmdLookup(client, rest)
	case "tail":
		cmdTail(client, rest)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: logctl [-controller host:port] <command>

commands:
  append [-tag k=v]... <body>     append a record, print its LId
  read <lid>                      print the record at a position
  head                            print the head of the log
  lookup -tag k[=v] [-recent n]   find records by tag
  tail [-from lid]                follow the log (ctrl-c to stop)
  stats [-interval d]             per-maintainer throughput and latency
  reads [-interval d]             per-maintainer read-path counters and cache hit ratio
  replicas                        per-group replica membership, health, lag
  epochs                          the epoch journal: placements, boundaries, migration progress
  grow -maintainers n [-first lid] [-batch n] [-addrs a,b,...]
                                  propose the next epoch (an elastic deployment
                                  executes the switchover; a journal-only
                                  controller requires -first and -addrs)
  trace -nodes a,b [-trace id] [-stage s] [-mindur d] [-budget]
                                  join the nodes' flight recorders into span trees`)
	os.Exit(2)
}

// cmdTrace fetches /debug/trace from every listed observability endpoint
// and joins the dumps into cross-process span trees (or, with -budget, the
// aggregated per-stage latency budget).
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	nodes := fs.String("nodes", "127.0.0.1:7070", "comma-separated obsrv addresses (host:port)")
	traceID := fs.String("trace", "", "only spans of this trace id (hex)")
	stage := fs.String("stage", "", "only spans of this stage")
	mindur := fs.Duration("mindur", 0, "only spans at least this long")
	limit := fs.Int("limit", 0, "most recent n spans per node (0 = all retained)")
	budget := fs.Bool("budget", false, "print the per-stage latency budget instead of span trees")
	fs.Parse(args)

	q := url.Values{}
	if *traceID != "" {
		q.Set("trace", *traceID)
	}
	if *stage != "" {
		q.Set("stage", *stage)
	}
	if *mindur > 0 {
		q.Set("mindur", mindur.String())
	}
	if *limit > 0 {
		q.Set("limit", strconv.Itoa(*limit))
	}

	var spans []trace.Span
	for _, node := range strings.Split(*nodes, ",") {
		node = strings.TrimSpace(node)
		if node == "" {
			continue
		}
		u := "http://" + node + "/debug/trace"
		if enc := q.Encode(); enc != "" {
			u += "?" + enc
		}
		resp, err := http.Get(u)
		if err != nil {
			log.Fatalf("trace: fetching %s: %v", node, err)
		}
		var dump obsrv.TraceDump
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("trace: decoding %s: %v", node, err)
		}
		spans = append(spans, dump.Spans...)
	}
	if len(spans) == 0 {
		fmt.Println("no spans retained (is sampling enabled on the nodes?)")
		return
	}
	if *budget {
		b := trace.ComputeBudget(spans)
		fmt.Printf("traces=%d coverage=%.1f%%\n", b.Traces, 100*b.Coverage())
		stages := make([]string, 0, len(b.StageNs))
		for s := range b.StageNs {
			stages = append(stages, s)
		}
		sort.Slice(stages, func(i, j int) bool { return b.StageNs[stages[i]] > b.StageNs[stages[j]] })
		tbl := metrics.Table{Header: []string{"stage", "time", "queue", "share"}}
		for _, s := range stages {
			tbl.AddRow(s,
				time.Duration(b.StageNs[s]).Round(time.Microsecond).String(),
				time.Duration(b.QueueNs[s]).Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f%%", 100*float64(b.StageNs[s])/float64(b.CoveredNs)))
		}
		fmt.Print(tbl.String())
		return
	}
	trace.RenderText(os.Stdout, spans)
}

// tagFlags parses repeated -tag k=v arguments out of args, returning the
// tags and the remaining arguments.
func tagFlags(args []string) ([]core.Tag, []string) {
	var tags []core.Tag
	var rest []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-tag" && i+1 < len(args) {
			k, v, _ := strings.Cut(args[i+1], "=")
			tags = append(tags, core.Tag{Key: k, Value: v})
			i++
			continue
		}
		rest = append(rest, args[i])
	}
	return tags, rest
}

func cmdAppend(c *flstore.Client, args []string) {
	tags, rest := tagFlags(args)
	if len(rest) != 1 {
		usage()
	}
	lid, err := c.Append([]byte(rest[0]), tags)
	if err != nil {
		log.Fatalf("append: %v", err)
	}
	fmt.Println(lid)
}

func cmdRead(c *flstore.Client, args []string) {
	if len(args) != 1 {
		usage()
	}
	lid, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		log.Fatalf("bad LId %q: %v", args[0], err)
	}
	rec, err := c.ReadLId(lid)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	printRecord(rec)
}

func cmdHead(c *flstore.Client) {
	head, err := c.HeadExact()
	if err != nil {
		log.Fatalf("head: %v", err)
	}
	fmt.Println(head)
}

func cmdLookup(c *flstore.Client, args []string) {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	tag := fs.String("tag", "", "tag key or key=value to match")
	recent := fs.Int("recent", 10, "return the most recent n matches")
	fs.Parse(args)
	if *tag == "" {
		usage()
	}
	k, v, hasValue := strings.Cut(*tag, "=")
	rule := core.Rule{TagKey: k, MostRecent: true, Limit: *recent}
	if hasValue {
		rule.TagCmp = core.CmpEQ
		rule.TagValue = v
	}
	recs, err := c.Read(rule)
	if err != nil {
		log.Fatalf("lookup: %v", err)
	}
	for _, rec := range recs {
		printRecord(rec)
	}
}

func cmdTail(c *flstore.Client, args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	from := fs.Uint64("from", 0, "start position (default: current head + 1)")
	fs.Parse(args)
	start := *from
	if start == 0 {
		head, err := c.HeadExact()
		if err != nil {
			log.Fatalf("head: %v", err)
		}
		start = head + 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()
	err := c.Tail(ctx, start, func(rec *core.Record) bool {
		printRecord(rec)
		return true
	})
	if err != nil && ctx.Err() == nil {
		log.Fatalf("tail: %v", err)
	}
}

// cmdStats fetches the controller's metrics snapshot twice, interval apart,
// and renders one row per maintainer: head of log, append throughput over
// the window (counter delta), p99 append latency (bucketed histogram), and
// cumulative overload rejections.
func cmdStats(admin *flstore.Admin, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "sampling window for throughput rates")
	fs.Parse(args)
	ctx := context.Background()

	before, err := admin.Stats(ctx)
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	time.Sleep(*interval)
	after, err := admin.Stats(ctx)
	if err != nil {
		log.Fatalf("stats: %v", err)
	}

	// Enumerate maintainers from the appends counter family.
	var ids []int
	for _, s := range after.Series {
		if s.Name != "flstore_appends_total" {
			continue
		}
		if id, err := strconv.Atoi(s.Labels["maintainer"]); err == nil {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		log.Fatal("stats: no maintainer series in snapshot (is the node set running with metrics enabled?)")
	}
	sort.Ints(ids)

	val := func(snap metrics.Snapshot, name, maintainer string) float64 {
		if s := snap.Find(name, map[string]string{"maintainer": maintainer}); s != nil {
			return s.Value
		}
		return 0
	}
	tbl := metrics.Table{Header: []string{"maintainer", "head LId", "appends/s", "p99 append", "rejected"}}
	for _, id := range ids {
		m := strconv.Itoa(id)
		rate := (val(after, "flstore_appends_total", m) - val(before, "flstore_appends_total", m)) / interval.Seconds()
		p99 := "-"
		if h := after.Find("flstore_append_seconds", map[string]string{"maintainer": m}); h != nil && h.Count > 0 {
			p99 = time.Duration(h.Quantile(0.99) * float64(time.Second)).Round(time.Microsecond).String()
		}
		tbl.AddRow(m,
			strconv.FormatUint(uint64(val(after, "flstore_head_lid", m)), 10),
			fmt.Sprintf("%.1f", rate),
			p99,
			strconv.FormatUint(uint64(val(after, "flstore_rejected_total", m)), 10))
	}
	fmt.Print(tbl.String())
}

// cmdReads renders the read path per maintainer: range-read / multi-read /
// tail-wait rates over the sampling window, records per range batch, and
// the cumulative tail-cache hit ratio with the store-scan counters that
// show whether tailing readers are touching the store at all.
func cmdReads(admin *flstore.Admin, args []string) {
	fs := flag.NewFlagSet("reads", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "sampling window for rates")
	fs.Parse(args)
	ctx := context.Background()

	before, err := admin.Stats(ctx)
	if err != nil {
		log.Fatalf("reads: %v", err)
	}
	time.Sleep(*interval)
	after, err := admin.Stats(ctx)
	if err != nil {
		log.Fatalf("reads: %v", err)
	}

	var ids []int
	for _, s := range after.Series {
		if s.Name != "flstore_appends_total" {
			continue
		}
		if id, err := strconv.Atoi(s.Labels["maintainer"]); err == nil {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		log.Fatal("reads: no maintainer series in snapshot (is the node set running with metrics enabled?)")
	}
	sort.Ints(ids)

	val := func(snap metrics.Snapshot, name, maintainer string) float64 {
		if s := snap.Find(name, map[string]string{"maintainer": maintainer}); s != nil {
			return s.Value
		}
		return 0
	}
	rate := func(name, m string) string {
		return fmt.Sprintf("%.1f", (val(after, name, m)-val(before, name, m))/interval.Seconds())
	}
	tbl := metrics.Table{Header: []string{
		"maintainer", "range reads/s", "recs/batch", "multi reads/s",
		"tail waits/s", "cache hit%", "store scans", "full scans"}}
	for _, id := range ids {
		m := strconv.Itoa(id)
		reads := val(after, "flstore_range_reads_total", m) - val(before, "flstore_range_reads_total", m)
		recs := val(after, "flstore_range_records_total", m) - val(before, "flstore_range_records_total", m)
		perBatch := "-"
		if reads > 0 {
			perBatch = fmt.Sprintf("%.1f", recs/reads)
		}
		hits := val(after, "flstore_tail_cache_hits_total", m)
		misses := val(after, "flstore_tail_cache_misses_total", m)
		hitRatio := "-"
		if hits+misses > 0 {
			hitRatio = fmt.Sprintf("%.1f", 100*hits/(hits+misses))
		}
		tbl.AddRow(m,
			rate("flstore_range_reads_total", m),
			perBatch,
			rate("flstore_multi_reads_total", m),
			rate("flstore_tail_waits_total", m),
			hitRatio,
			strconv.FormatUint(uint64(val(after, "flstore_store_scans_total", m)), 10),
			strconv.FormatUint(uint64(val(after, "flstore_scan_calls_total", m)), 10))
	}
	fmt.Print(tbl.String())
}

// cmdReplicas renders the controller's replica-group status: one row per
// group member with its role, reachability, per-range frontier, catch-up
// lag in log positions, validity watermark (positions below it are served
// from the member's local store), invalidation backlog (announced but
// unresolved positions, where reads block or fail over), and durable
// watermark (positions below it are fsynced in the member's local store;
// "-" when the store is volatile).
func cmdReplicas(admin *flstore.Admin) {
	st, err := admin.Replicas(context.Background())
	if err != nil {
		log.Fatalf("replicas: %v (is the node set running with -replication?)", err)
	}
	fmt.Printf("replication=%d ack=%s\n", st.Replication, st.Ack)
	tbl := metrics.Table{Header: []string{"range", "member", "role", "health", "frontier", "lag LIds", "valid wm", "inval backlog", "durable wm"}}
	for _, g := range st.Groups {
		for _, m := range g.Members {
			health := "ok"
			if !m.Healthy {
				health = "unreachable"
			}
			durable := "-"
			if m.DurableWatermark > 0 {
				durable = strconv.FormatUint(m.DurableWatermark, 10)
			}
			tbl.AddRow(
				strconv.Itoa(g.Range),
				strconv.Itoa(m.Member),
				m.Role,
				health,
				strconv.FormatUint(m.Frontier, 10),
				strconv.FormatUint(m.LagLIds, 10),
				strconv.FormatUint(m.ValidWatermark, 10),
				strconv.FormatUint(m.InvalBacklog, 10),
				durable)
		}
	}
	fmt.Print(tbl.String())
}

// cmdEpochs renders the epoch journal: one row per epoch with its
// boundary, placement, serving addresses, and — for sealed epochs of an
// elastic deployment — live migration progress.
func cmdEpochs(admin *flstore.Admin) {
	eps, err := admin.Epochs(context.Background())
	if err != nil {
		log.Fatalf("epochs: %v", err)
	}
	tbl := metrics.Table{Header: []string{"epoch", "first LId", "maintainers", "batch", "state", "migration", "addrs"}}
	for _, e := range eps {
		state := "serving"
		if e.Sealed {
			state = "sealed"
		}
		migration := "-"
		if e.Sealed && e.RangesTotal > 0 {
			migration = fmt.Sprintf("%d/%d ranges, %d recs", e.RangesStreamed, e.RangesTotal, e.RecordsStreamed)
			if e.MigrationDone {
				migration += " (done)"
			}
		}
		tbl.AddRow(
			strconv.Itoa(e.Epoch),
			strconv.FormatUint(e.FirstLId, 10),
			strconv.Itoa(e.NumMaintainers),
			strconv.FormatUint(e.BatchSize, 10),
			state,
			migration,
			strings.Join(e.MaintainerAddrs, ","))
	}
	fmt.Print(tbl.String())
}

// cmdGrow proposes the next epoch through the admin surface. Against a
// deployment serving an flstore.Orchestrator the proposal executes a live
// switchover; against a journal-only controller (cmd/flstore) it records
// the epoch and requires the boundary and the new addresses explicitly.
func cmdGrow(admin *flstore.Admin, args []string) {
	fs := flag.NewFlagSet("grow", flag.ExitOnError)
	maintainers := fs.Int("maintainers", 0, "maintainer count of the new epoch (required)")
	first := fs.Uint64("first", 0, "first LId of the new epoch (journal-only controllers; elastic deployments pick it)")
	batch := fs.Uint64("batch", 0, "placement batch size (0 keeps the current)")
	addrs := fs.String("addrs", "", "comma-separated maintainer addresses of the new epoch")
	fs.Parse(args)
	if *maintainers <= 0 {
		usage()
	}
	prop := flstore.EpochProposal{
		FirstLId:       *first,
		NumMaintainers: *maintainers,
		BatchSize:      *batch,
	}
	if *addrs != "" {
		prop.MaintainerAddrs = strings.Split(*addrs, ",")
	}
	st, err := admin.ProposeEpoch(context.Background(), prop)
	if err != nil {
		log.Fatalf("grow: %v", err)
	}
	fmt.Printf("epoch %d: first LId %d, %d maintainers, batch %d\n",
		st.Epoch, st.FirstLId, st.NumMaintainers, st.BatchSize)
}

func printRecord(rec *core.Record) {
	var tags strings.Builder
	for i, t := range rec.Tags {
		if i > 0 {
			tags.WriteByte(' ')
		}
		fmt.Fprintf(&tags, "%s=%s", t.Key, t.Value)
	}
	fmt.Printf("lid=%d toid=%d host=%s tags=[%s] body=%q\n",
		rec.LId, rec.TOId, rec.Host, tags.String(), rec.Body)
}
