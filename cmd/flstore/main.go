// Command flstore runs a standalone single-datacenter FLStore node set on
// one machine: N log maintainers, K indexers, and a controller, all served
// over TCP. Clients initialize sessions against the controller address.
//
//	go run ./cmd/flstore -maintainers 3 -indexers 2 -batch 1000 \
//	    -listen 127.0.0.1:7000 -data /tmp/flstore -replication 3 -ack majority
//
// With -replication R > 1 every LId range is hosted by R consecutive
// maintainers (its replica group); -ack picks how many copies must exist
// before an append is acknowledged (one|majority|all). Clients obtain both
// from the controller and replicate transparently; `logctl replicas` shows
// per-group membership, health, and catch-up lag.
//
// Ports: the controller listens on -listen; maintainer i on port+1+i;
// indexer j after the maintainers. With -data, records persist in segment
// files under the directory (one subdirectory per maintainer) and survive
// restarts; without it the log is in memory.
//
// Observability: every component registers its metrics in one process-wide
// registry served over HTTP on -metrics (default: controller port + 100) at
// /metrics (Prometheus text), /metrics.json, /healthz, and /debug/pprof.
// The controller additionally answers the stats RPC used by `logctl stats`.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/obsrv"
	"repro/internal/ratelimit"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	var (
		nMaintainers = flag.Int("maintainers", 3, "number of log maintainers")
		nIndexers    = flag.Int("indexers", 1, "number of indexers")
		batch        = flag.Uint64("batch", 1000, "placement round size (LIds per maintainer per round)")
		listen       = flag.String("listen", "127.0.0.1:7000", "controller listen address; components use consecutive ports")
		dataDir      = flag.String("data", "", "directory for persistent segment stores (empty = in-memory)")
		fsyncPolicy  = flag.String("fsync", "group", "segment fsync policy: group (one fsync per commit window), each (per batch), never")
		tiered       = flag.Bool("tiered", false, "tier sealed segments into a cold archive (requires -data); compaction via storage.TieredStore")
		gossipEvery  = flag.Duration("gossip", 5*time.Millisecond, "head-of-log gossip interval")
		metricsAddr  = flag.String("metrics", "", `metrics HTTP listen address ("" = controller port + 100, "off" = disabled)`)
		replication  = flag.Int("replication", 1, "replicas per LId range (1 = unreplicated)")
		ackPolicy    = flag.String("ack", "majority", "replication ack policy: one|majority|all")
		admitRate    = flag.Float64("admit-rate", 0, "per-maintainer admission budget in records/sec (0 = unlimited)")
		admitBurst   = flag.Int("admit-burst", 0, "admission token-bucket burst in records (0 = rate/10, min 64)")
		backlog      = flag.Int("backlog", 0, "per-maintainer ingress backlog bound in records (0 = default 65536, negative = unbounded)")
		traceSample  = flag.Uint("trace-sample", 1024, "record one in N operations into the flight recorder (0 = tracing off)")
		traceSlow    = flag.Duration("trace-slow", 50*time.Millisecond, "force-sample and log operations slower than this (0 = disabled)")
	)
	flag.Parse()
	trace.SetSampling(uint32(*traceSample))
	trace.SetSlowOpThreshold(*traceSlow)
	trace.SetNodeName("flstore@" + *listen)
	if err := run(*nMaintainers, *nIndexers, *batch, *listen, *dataDir, *fsyncPolicy, *tiered, *gossipEvery, *metricsAddr, *replication, *ackPolicy, *admitRate, *admitBurst, *backlog); err != nil {
		log.Fatal(err)
	}
}

func run(nMaintainers, nIndexers int, batch uint64, listen, dataDir, fsyncPolicy string, tiered bool, gossipEvery time.Duration, metricsAddr string, replication int, ackPolicy string, admitRate float64, admitBurst, backlog int) error {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return fmt.Errorf("bad -listen: %w", err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("bad -listen port: %w", err)
	}
	addr := func(offset int) string {
		return net.JoinHostPort(host, strconv.Itoa(basePort+offset))
	}

	placement := flstore.Placement{NumMaintainers: nMaintainers, BatchSize: batch}
	if err := placement.Validate(); err != nil {
		return err
	}
	if replication < 1 {
		replication = 1
	}
	layout := replica.Layout{N: nMaintainers, R: replication}
	if err := layout.Validate(); err != nil {
		return err
	}
	ack, err := replica.ParseAckPolicy(ackPolicy)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()

	// Indexers first (maintainers post tags to them).
	var indexerAddrs []string
	var indexerAPIs []flstore.IndexerAPI
	var servers []*rpc.Server
	for j := 0; j < nIndexers; j++ {
		ix := flstore.NewIndexer(nil)
		srv := rpc.NewServer()
		srv.EnableMetrics(reg, fmt.Sprintf("indexer-%d", j))
		flstore.ServeIndexer(srv, ix)
		a := addr(1 + nMaintainers + j)
		if _, err := srv.Listen(a); err != nil {
			return fmt.Errorf("indexer %d: %w", j, err)
		}
		servers = append(servers, srv)
		indexerAddrs = append(indexerAddrs, a)
		conn, err := rpc.Dial(a)
		if err != nil {
			return err
		}
		indexerAPIs = append(indexerAPIs, flstore.NewIndexerClient(conn))
		log.Printf("indexer %d listening on %s", j, a)
	}

	// Maintainers.
	var maintainerAddrs []string
	var maintainers []*flstore.Maintainer
	var syncPolicy storage.SyncPolicy
	switch fsyncPolicy {
	case "group":
		syncPolicy = storage.SyncGroupCommit
	case "each":
		syncPolicy = storage.SyncEachBatch
	case "never":
		syncPolicy = storage.SyncNever
	default:
		return fmt.Errorf("bad -fsync %q (want group, each, or never)", fsyncPolicy)
	}
	if tiered && dataDir == "" {
		return fmt.Errorf("-tiered requires -data")
	}
	for i := 0; i < nMaintainers; i++ {
		var st storage.Store
		if dataDir != "" {
			dir := filepath.Join(dataDir, fmt.Sprintf("maintainer-%d", i))
			opts := storage.SegmentStoreOptions{Sync: syncPolicy}
			if tiered {
				ts, serr := storage.OpenTieredStore(dir, opts)
				if serr != nil {
					return fmt.Errorf("maintainer %d store: %w", i, serr)
				}
				ts.Hot().EnableMetrics(reg, metrics.L("maintainer", strconv.Itoa(i)))
				st = ts
			} else {
				seg, serr := storage.OpenSegmentStore(dir, opts)
				if serr != nil {
					return fmt.Errorf("maintainer %d store: %w", i, serr)
				}
				seg.EnableMetrics(reg, metrics.L("maintainer", strconv.Itoa(i)))
				st = seg
			}
		}
		var limiter *ratelimit.Limiter
		if admitRate > 0 {
			b := admitBurst
			if b <= 0 {
				b = int(admitRate / 10)
				if b < 64 {
					b = 64
				}
			}
			limiter = ratelimit.New(admitRate, b)
		}
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:             i,
			Placement:         placement,
			Store:             st,
			Indexers:          indexerAPIs,
			EnforceHead:       true,
			Replication:       replication,
			Limiter:           limiter,
			MaxIngressBacklog: backlog,
		})
		if err != nil {
			return err
		}
		m.EnableMetrics(reg)
		srv := rpc.NewServer()
		srv.EnableMetrics(reg, fmt.Sprintf("maintainer-%d", i))
		flstore.ServeMaintainer(srv, m)
		a := addr(1 + i)
		if _, err := srv.Listen(a); err != nil {
			return fmt.Errorf("maintainer %d: %w", i, err)
		}
		servers = append(servers, srv)
		maintainers = append(maintainers, m)
		maintainerAddrs = append(maintainerAddrs, a)
		log.Printf("maintainer %d listening on %s (%d records recovered)", i, a, m.Store().Len())
	}

	// Gossip wiring.
	var gossipers []*flstore.Gossiper
	for i, m := range maintainers {
		peers := make([]flstore.MaintainerAPI, nMaintainers)
		for j := 0; j < nMaintainers; j++ {
			if j == i {
				continue
			}
			conn, err := rpc.Dial(maintainerAddrs[j])
			if err != nil {
				return err
			}
			peers[j] = flstore.NewMaintainerClient(conn)
		}
		g := flstore.NewGossiper(m, peers, gossipEvery)
		g.EnableMetrics(reg)
		g.Start()
		gossipers = append(gossipers, g)
	}

	// Controller last: it advertises everything above.
	ctrl, err := flstore.NewController(flstore.Config{
		Placement:       placement,
		MaintainerAddrs: maintainerAddrs,
		IndexerAddrs:    indexerAddrs,
		Replication:     replication,
		AckPolicy:       ack.String(),
	})
	if err != nil {
		return err
	}
	ctrlSrv := rpc.NewServer()
	ctrlSrv.EnableMetrics(reg, "controller")
	flstore.ServeController(ctrlSrv, ctrl)
	flstore.ServeStats(ctrlSrv, reg)
	// Typed admin surface for `logctl epochs` / `logctl grow`: this node
	// set has a fixed member roster, so proposals are journal-only (the
	// operator supplies the boundary and the new set's addresses); an
	// orchestrated deployment would serve an flstore.Orchestrator here
	// instead and execute switchovers live.
	flstore.ServeAdmin(ctrlSrv, &flstore.ControllerAdmin{Ctrl: ctrl})
	// Replica status for `logctl replicas`: assembled at request time by
	// polling the in-process maintainers' per-range frontiers.
	flstore.ServeReplicas(ctrlSrv, func() (*replica.ClusterStatus, error) {
		return flstore.BuildClusterStatus(placement, layout, ack, func(mi, ri int) (uint64, error) {
			return maintainers[mi].RangeFrontier(ri)
		}, func(mi, ri int) (uint64, uint64, error) {
			return maintainers[mi].ValidityWatermark(ri)
		}, func(mi, ri int) (uint64, error) {
			return maintainers[mi].DurableWatermark(ri)
		}), nil
	})
	if _, err := ctrlSrv.Listen(listen); err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	servers = append(servers, ctrlSrv)
	log.Printf("controller listening on %s (placement: %d maintainers, batch %d, replication %d, ack %s)",
		listen, nMaintainers, batch, replication, ack)

	// Metrics/health HTTP endpoint.
	var obs *obsrv.Server
	if metricsAddr != "off" {
		if metricsAddr == "" {
			metricsAddr = net.JoinHostPort(host, strconv.Itoa(basePort+100))
		}
		obs = obsrv.New(reg)
		for i, m := range maintainers {
			m := m
			obs.AddCheck(fmt.Sprintf("maintainer-%d", i), func() error {
				_, err := m.Head()
				return err
			})
		}
		gossipBound := 20 * gossipEvery
		obs.AddCheck("gossip", func() error {
			for i, g := range gossipers {
				if age := g.RoundAge(); age > gossipBound {
					return fmt.Errorf("gossiper %d stalled: last round %s ago", i, age)
				}
			}
			return nil
		})
		a, err := obs.Start(metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		log.Printf("metrics on http://%s/metrics (healthz, pprof alongside)", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if obs != nil {
		obs.Close()
	}
	for _, g := range gossipers {
		g.Stop()
	}
	for _, s := range servers {
		s.Close()
	}
	for _, m := range maintainers {
		if err := m.Store().Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
	}
	return nil
}
