// Command repro regenerates every table and figure of the paper's
// evaluation (§7) and prints the measured rows/series next to the numbers
// the paper reports. Run all experiments, or one:
//
//	go run ./cmd/repro                       # everything
//	go run ./cmd/repro -exp fig8             # one experiment
//	go run ./cmd/repro -exp table4 -dur 5s   # longer steady window
//
// Experiments: fig7, fig8, table2, table3, table4, table5, fig9,
// ablation-sequencer, ablation-batchsize, ablation-gossip,
// ablation-tokencarry, ablation-flush, geo-visibility, hyksos, failover,
// readpath, overload, tracelat, scale, durability, elastic.
//
// The scale experiment runs entries of the internal/scale scenario matrix
// at full acceptance size (>= 10000 open-loop sessions); select one with
// -scenario, or leave it empty for the steady + partition pair:
//
//	go run ./cmd/repro -exp scale -scenario herd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/scale"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig7, fig8, table2..table5, fig9, ablation-*, scale)")
	dur := flag.Duration("dur", 2*time.Second, "steady-state measurement window per point")
	scenario := flag.String("scenario", "", "scale scenario to run (steady, diurnal, hotkey, herd, partition; empty = steady + partition)")
	flag.Parse()

	runners := map[string]func(time.Duration) error{
		"fig7":                runFig7,
		"fig8":                runFig8,
		"table2":              func(d time.Duration) error { return runTable(2, 1, 1, d) },
		"table3":              func(d time.Duration) error { return runTable(3, 2, 1, d) },
		"table4":              func(d time.Duration) error { return runTable(4, 2, 2, d) },
		"table5":              func(d time.Duration) error { return runTable5(d) },
		"fig9":                runFig9,
		"ablation-sequencer":  runAblationSequencer,
		"ablation-batchsize":  runAblationBatchSize,
		"ablation-gossip":     runAblationGossip,
		"ablation-tokencarry": runAblationTokenCarry,
		"ablation-flush":      runAblationFlush,
		"geo-visibility":      runGeoVisibility,
		"hyksos":              runHyksos,
		"failover":            runFailover,
		"readpath":            runReadPath,
		"overload":            runOverload,
		"tracelat":            runTraceLat,
		"scale":               func(d time.Duration) error { return runScale(*scenario, d) },
		"durability":          runDurability,
		"elastic":             runElastic,
	}
	order := []string{
		"fig7", "fig8", "table2", "table3", "table4", "table5", "fig9",
		"ablation-sequencer", "ablation-batchsize", "ablation-gossip",
		"ablation-tokencarry", "ablation-flush", "geo-visibility", "hyksos",
		"failover", "readpath", "overload", "tracelat", "scale", "durability",
		"elastic",
	}
	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](*dur); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	if err := run(*dur); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *exp, err)
		os.Exit(1)
	}
}

func header(title, paper string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("paper: %s\n\n", paper)
}

func runFig7(dur time.Duration) error {
	header("Figure 7 — single-maintainer load curve (public cloud)",
		"achieved throughput rises with the target, peaks ≈150K at target 150K, then declines to ≈120K under overload")
	targets := []float64{25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 200_000, 250_000, 300_000}
	points, err := cluster.RunFigure7(cluster.PrivateCloud(), targets, dur)
	if err != nil {
		return err
	}
	tb := &metrics.Table{Header: []string{"Target (appends/s)", "Achieved (appends/s)"}}
	for _, p := range points {
		tb.AddRow(fmt.Sprintf("%.0fK", p.Target/1000), fmt.Sprintf("%.1fK", p.Achieved/1000))
	}
	fmt.Print(tb.String())
	return nil
}

func runFig8(dur time.Duration) error {
	header("Figure 8 — FLStore append throughput vs number of maintainers",
		"near-linear scaling: 10 maintainers reach ≈99.3% of perfect scaling (private), ≈99.9% (public@250K)")
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	series, err := cluster.RunFigure8(counts, dur)
	if err != nil {
		return err
	}
	tb := &metrics.Table{Header: []string{"Maintainers", series[0].Label, series[1].Label, series[2].Label}}
	for i, n := range counts {
		tb.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.0fK", series[0].Points[i].AchievedTotal/1000),
			fmt.Sprintf("%.0fK", series[1].Points[i].AchievedTotal/1000),
			fmt.Sprintf("%.0fK", series[2].Points[i].AchievedTotal/1000))
	}
	fmt.Print(tb.String())
	for _, s := range series {
		fmt.Printf("scaling efficiency (%s): %.1f%%\n", s.Label, 100*cluster.ScalingEfficiency(s))
	}
	return nil
}

var paperTables = map[int]string{
	2: "Client 129, Batcher 129, Filter 129, Maintainer 124, Store 132 (all ≈ equal; client-bound)",
	3: "Client 64.5+64.9, Batcher 126, Filter 125, Maintainer 123, Store 132 (batcher is the bottleneck)",
	4: "Client 64.9+64.1, Batcher 90.5+92.2, Filter 120, Maintainer 118, Store 121 (filter is the bottleneck)",
	5: "Client 115.5+117.6, Batcher 112.3+116.7, Filter 113.7+115.6, Maintainer 110.2+113.5, Store 115.4+119.8 (all stages double)",
}

func runTable(n, clients, batchers int, dur time.Duration) error {
	header(fmt.Sprintf("Table %d — Chariots pipeline, %d client(s), %d batcher(s), 1 of each other stage", n, clients, batchers),
		paperTables[n])
	res, err := cluster.RunPipeline(cluster.PipelineOptions{
		Profile: cluster.PrivateCloud(),
		Clients: clients, Batchers: batchers, Filters: 1, Queues: 1, Maintainers: 1,
		Duration: dur,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Printf("bottleneck stage: %s\n", res.Bottleneck)
	return nil
}

func runTable5(dur time.Duration) error {
	header("Table 5 — Chariots pipeline, two machines per stage", paperTables[5])
	res, err := cluster.RunPipeline(cluster.PipelineOptions{
		Profile: cluster.PrivateCloud(),
		Clients: 2, Batchers: 2, Filters: 2, Queues: 2, Maintainers: 2,
		Duration: dur,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runFig9(dur time.Duration) error {
	header("Figure 9 — throughput timeseries (Table 4 configuration, fixed record count)",
		"clients/batchers finish early; the queue's throughput spikes once the filter stops receiving")
	profile := cluster.PrivateCloud()
	res, err := cluster.RunPipeline(cluster.PipelineOptions{
		Profile: profile,
		Clients: 2, Batchers: 2, Filters: 1, Queues: 1, Maintainers: 1,
		// The record count scales with the simulation so the drain
		// tail spans the same wall-clock shape on any host.
		Records:      uint64(600_000 / profile.ScaleFactor()),
		SampleWindow: 250 * time.Millisecond,
		// Deep buffering makes the drain tail visible: the batchers
		// finish absorbing early while the filter's inbox holds the
		// backlog, and once their transmissions end the filter's whole
		// NIC serves egress — the paper's abrupt queue increase.
		ChannelDepth: 1 << 21,
	})
	if err != nil {
		return err
	}
	names := []string{"Client 1", "Batcher 1", "Queue"}
	tb := &metrics.Table{Header: append([]string{"t (s)"}, names...)}
	maxLen := 0
	for _, name := range names {
		if len(res.Samples[name]) > maxLen {
			maxLen = len(res.Samples[name])
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%.2f", float64(i+1)*0.25)}
		for _, name := range names {
			samples := res.Samples[name]
			if i < len(samples) {
				row = append(row, fmt.Sprintf("%.0fK", samples[i].Rate/1000))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
	fmt.Printf("total records: %d drained in %v\n", res.Applied, res.Elapsed.Round(10*time.Millisecond))
	return nil
}

func runAblationSequencer(dur time.Duration) error {
	header("Ablation — pre-assignment (CORFU-style sequencer) vs post-assignment (FLStore)",
		"motivating claim (§1, §5.2): the sequencer plateaus at one machine's capacity; FLStore scales with maintainers")
	points, err := cluster.RunSequencerVsFLStore(cluster.PrivateCloud(),
		[]int{1, 2, 4, 6, 8, 10}, 200_000, dur)
	if err != nil {
		return err
	}
	tb := &metrics.Table{Header: []string{"Machines", "Sequencer (appends/s)", "FLStore (appends/s)", "FLStore speedup"}}
	for _, p := range points {
		tb.AddRow(fmt.Sprint(p.Machines),
			fmt.Sprintf("%.0fK", p.Sequencer/1000),
			fmt.Sprintf("%.0fK", p.FLStore/1000),
			fmt.Sprintf("%.1fx", p.FLStore/p.Sequencer))
	}
	fmt.Print(tb.String())
	return nil
}

func runAblationBatchSize(dur time.Duration) error {
	header("Ablation — FLStore round size (placement batch)",
		"design choice §5.2: the deterministic round size does not gate append throughput (it changes head-of-log lag, not bandwidth)")
	// Throughput comparison across batch sizes at fixed scale.
	for _, batch := range []uint64{100, 1000, 10000} {
		res, err := cluster.RunFLStoreWithBatch(cluster.FLStoreOptions{
			Profile:         cluster.PrivateCloud(),
			Maintainers:     4,
			TargetPerClient: 125_000,
			Duration:        dur,
		}, batch)
		if err != nil {
			return err
		}
		fmt.Printf("batch %6d: %.0fK appends/s\n", batch, res.AchievedTotal/1000)
	}
	return nil
}

func runAblationGossip(dur time.Duration) error {
	header("Ablation — head-of-log gossip interval",
		"§5.4: gossip is fixed-size and off the append path; larger intervals raise read-visible head lag, not append cost")
	for _, interval := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		lag, thr, err := cluster.RunGossipAblation(cluster.PrivateCloud(), 4, 100_000, interval, dur)
		if err != nil {
			return err
		}
		fmt.Printf("gossip %6s: throughput %.0fK appends/s, mean head lag %d records\n",
			interval, thr/1000, lag)
	}
	return nil
}

func runAblationTokenCarry(dur time.Duration) error {
	header("Ablation — deferred records: carried with the token vs parked at the queue",
		"§6.2 trade-off: carrying costs token I/O, parking delays dependent records until the token returns")
	for _, carry := range []bool{true, false} {
		lat, err := cluster.RunTokenCarryAblation(carry, dur)
		if err != nil {
			return err
		}
		fmt.Printf("carry=%-5v: mean dependent-record apply latency %v\n", carry, lat.Round(time.Microsecond))
	}
	return nil
}

func runAblationFlush(dur time.Duration) error {
	header("Ablation — batcher flush threshold",
		"§6.2 trade-off: batching amortizes transfer overhead (throughput under capacity limits is flat — the limiters, like real NICs, price records not packets) but a lone record waits for the flush trigger, so larger thresholds cost append latency")
	for _, thresh := range []int{1, 64, 512} {
		res, err := cluster.RunPipeline(cluster.PipelineOptions{
			Profile: cluster.PrivateCloud(),
			Clients: 1, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
			Duration:       dur,
			FlushThreshold: thresh,
		})
		if err != nil {
			return err
		}
		lat, err := cluster.RunFlushLatency(thresh, 2*time.Millisecond, 200)
		if err != nil {
			return err
		}
		fmt.Printf("flush %5d: client %.0fK appends/s, lone-append latency %v\n",
			thresh, res.StageTotals()["Client"]/1000, lat.Round(time.Microsecond))
	}
	return nil
}

func runGeoVisibility(dur time.Duration) error {
	header("Extension — causal visibility lag vs WAN delay",
		"not in the paper's evaluation: how long after a local append the record is applied at a peer; expected shape lag ≈ one-way delay + pipeline time")
	appends := int(dur / (40 * time.Millisecond))
	if appends < 10 {
		appends = 10
	}
	tb := &metrics.Table{Header: []string{"one-way delay", "mean visibility lag", "p99"}}
	for _, oneWay := range []time.Duration{0, 5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond} {
		res, err := cluster.RunGeoVisibility(oneWay, appends)
		if err != nil {
			return err
		}
		tb.AddRow(oneWay.String(),
			res.Mean.Round(100*time.Microsecond).String(),
			res.P99.Round(100*time.Microsecond).String())
	}
	fmt.Print(tb.String())
	return nil
}

func runFailover(dur time.Duration) error {
	header("Extension — replicated maintainer kill/restart (ack policies)",
		"not in the paper's evaluation: availability through a maintainer failure under replica groups; appends must keep succeeding under majority/one, and the restarted member catches up")
	appends := int(dur / (2 * time.Millisecond))
	if appends < 100 {
		appends = 100
	}
	tb := &metrics.Table{Header: []string{"ack", "appends ok", "appends failed", "evicted", "catch-up recs", "head growth", "read failures", "append p99"}}
	for _, ack := range []replica.AckPolicy{replica.AckOne, replica.AckMajority} {
		res, err := cluster.RunFailover(cluster.FailoverOptions{
			Maintainers:     3,
			Replication:     3,
			Ack:             ack,
			Seed:            7,
			AppendsPerPhase: appends,
		})
		if err != nil {
			return err
		}
		ok := res.Appends[0] + res.Appends[1] + res.Appends[2] -
			res.FailedAppends[0] - res.FailedAppends[1] - res.FailedAppends[2]
		failed := res.FailedAppends[0] + res.FailedAppends[1] + res.FailedAppends[2]
		tb.AddRow(ack.String(),
			fmt.Sprintf("%d", ok),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%v", res.Evicted),
			fmt.Sprintf("%d", res.CatchUpRecords),
			fmt.Sprintf("%d → %d", res.HeadAfterKill, res.HeadFinal),
			fmt.Sprintf("%d/%d", res.ReadFailures, res.ReadsChecked),
			res.AppendP99.Round(10*time.Microsecond).String())
	}
	fmt.Print(tb.String())
	return nil
}

func runHyksos(dur time.Duration) error {
	header("Extension — Hyksos key-value workload (§4.1 case study)",
		"not in the paper's evaluation: put/get/get-txn mix over a Zipf key space on one datacenter")
	for _, mix := range []struct {
		name string
		put  float64
	}{{"read-heavy (10% put)", 0.1}, {"balanced (50% put)", 0.5}} {
		res, err := cluster.RunHyksos(cluster.HyksosOptions{
			Sessions:    4,
			Keys:        200,
			PutFraction: mix.put,
			Duration:    dur,
			ZipfSkew:    1.2,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %6.0f ops/s | put mean %v p99 %v | get mean %v p99 %v | get_txn mean %v\n",
			mix.name, res.OpsPerSec,
			res.PutMean.Round(10*time.Microsecond), res.PutP99.Round(10*time.Microsecond),
			res.GetMean.Round(10*time.Microsecond), res.GetP99.Round(10*time.Microsecond),
			res.TxnMean.Round(10*time.Microsecond))
	}
	return nil
}

func runReadPath(dur time.Duration) error {
	header("Extension — batched read path (push tail vs poll, range vs single reads)",
		"not in the paper's evaluation: closed-loop append→visible tail rate on the subscription path vs the seed's poll loop, and bulk range reads vs single-record round trips")
	res, err := cluster.RunReadPath(cluster.ReadPathOptions{
		Maintainers: 3,
		Records:     10_000,
		Budget:      dur,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tail  push %7.0f recs/s (%d recs) | poll %7.0f recs/s (%d recs) | speedup %.1fx (bar: >= 5x)\n",
		res.TailPushPerSec, res.TailPushRecords, res.TailPollPerSec, res.TailPollRecords, res.TailSpeedup)
	fmt.Printf("read  range %6.0f recs/s | single %6.0f recs/s | speedup %.1fx\n",
		res.RangeReadPerSec, res.SingleReadPerSec, res.RangeSpeedup)

	// Replica read-scaling sweep: the same hot range read with R=1..3
	// group members, every valid replica answering locally under the
	// invalidation protocol. Real TCP with one connection per maintainer
	// models fixed per-member serving capacity.
	points, err := cluster.RunReadScaling(cluster.ReadScalingOptions{
		Maintainers: 3,
		Budget:      dur / 2,
	})
	if err != nil {
		return err
	}
	res.ReadScaling = points
	for _, pt := range points {
		fmt.Printf("scale R=%d %7.0f reads/s (%d hot records)\n",
			pt.Replication, pt.ReadsPerSec, pt.Records)
	}
	if first, last := points[0], points[len(points)-1]; first.ReadsPerSec > 0 {
		res.ReadScalingX = last.ReadsPerSec / first.ReadsPerSec
	}
	fmt.Printf("scale R=%d -> R=%d aggregate read throughput %.1fx (bar: >= 2x)\n",
		points[0].Replication, points[len(points)-1].Replication, res.ReadScalingX)

	if err := cluster.WriteBench("BENCH_readpath.json", "readpath", res); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_readpath.json")
	if res.TailSpeedup < 5 {
		return fmt.Errorf("tail speedup %.1fx below the 5x acceptance bar", res.TailSpeedup)
	}
	if res.ReadScalingX < 2 {
		return fmt.Errorf("read scaling %.1fx below the 2x acceptance bar", res.ReadScalingX)
	}
	return nil
}

func runTraceLat(dur time.Duration) error {
	header("Extension — stage-latency attribution from the flight recorder",
		"not in the paper's evaluation: force-sampled appends through the replicated FLStore and the Chariots pipeline; bar: recorded spans attribute >= 90% of the client-measured end-to-end append latency")
	appends := int(dur / (5 * time.Millisecond))
	if appends < 100 {
		appends = 100
	}
	res, err := cluster.RunTraceLat(cluster.TraceLatOptions{
		Maintainers: 3,
		Replication: 2,
		Appends:     appends,
	})
	if err != nil {
		return err
	}
	meanE2E := time.Duration(0)
	if res.Appends > 0 {
		meanE2E = time.Duration(res.MeasuredNs / int64(res.Appends))
	}
	fmt.Printf("appends %d | mean e2e %v | traces %d | span coverage %.1f%% of measured latency (bar: >= 90%%)\n",
		res.Appends, meanE2E.Round(time.Microsecond), res.Traces, 100*res.Coverage)
	tb := &metrics.Table{Header: []string{"stage", "total", "queue", "share"}}
	for _, row := range res.Stages {
		tb.AddRow(row.Stage,
			time.Duration(row.TotalNs).Round(time.Microsecond).String(),
			time.Duration(row.QueueNs).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*row.Share))
	}
	fmt.Print(tb.String())
	fmt.Printf("pipeline stages traced: %s\n", strings.Join(res.PipelineStages, ", "))
	if err := cluster.WriteBench("BENCH_trace.json", "trace", res); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_trace.json")
	if res.Coverage < 0.90 {
		return fmt.Errorf("span coverage %.1f%% below the 90%% acceptance bar", 100*res.Coverage)
	}
	if !cluster.HasStages(res.AppendStages, "client.append", "rpc.call", "maint.store", "replica.ack") {
		return fmt.Errorf("append trace missing lifecycle stages: got %v", res.AppendStages)
	}
	if !cluster.HasStages(res.PipelineStages, "dc.append", "pipe.batch", "pipe.filter", "pipe.queue") {
		return fmt.Errorf("pipeline trace missing stages: got %v", res.PipelineStages)
	}
	return nil
}

func runOverload(dur time.Duration) error {
	header("Extension — end-to-end backpressure & admission control",
		"not in the paper's evaluation: 2x-saturating offered load with the pipeline credit bound + shed policy on vs the seed's unbounded ingress; bars: bounded in-flight records and bounded admitted-append p99 with admission on")
	res, err := cluster.RunOverload(cluster.OverloadOptions{Duration: dur / 2})
	if err != nil {
		return err
	}
	for _, arm := range []cluster.OverloadArm{res.On, res.Off} {
		mode := "off"
		if arm.Admission {
			mode = "on "
		}
		fmt.Printf("admission %s  offered %7d accepted %7d shed %7d | in-flight high water %6d | probe p50 %7.1fms p99 %7.1fms (%d probes, %d shed) | accept p50 %7.1fms p99 %7.1fms | applied %7.0f recs/s\n",
			mode, arm.Offered, arm.Accepted, arm.Shed, arm.CreditHighWater,
			arm.ProbeP50Ms, arm.ProbeP99Ms, arm.ProbeCount, arm.ProbeSheds,
			arm.AcceptP50Ms, arm.AcceptP99Ms, arm.AppliedPerSec)
	}
	fmt.Printf("high-water ratio (off/on) %.1fx | p99 ratio (off/on) %.1fx\n", res.HighWaterRatio, res.P99Ratio)
	if err := cluster.WriteBench("BENCH_overload.json", "overload", res); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_overload.json")
	if res.On.CreditHighWater > res.Credits {
		return fmt.Errorf("admission-on in-flight high water %d exceeds the %d-credit bound", res.On.CreditHighWater, res.Credits)
	}
	if res.HighWaterRatio < 2 {
		return fmt.Errorf("in-flight high-water ratio %.1fx below the 2x acceptance bar (admission made no difference)", res.HighWaterRatio)
	}
	if res.On.ProbeP99Ms > 500 {
		return fmt.Errorf("admission-on probe p99 %.1fms above the 500ms bound", res.On.ProbeP99Ms)
	}
	if res.P99Ratio < 2 {
		return fmt.Errorf("p99 ratio %.1fx below the 2x acceptance bar (admission made no difference)", res.P99Ratio)
	}
	return nil
}

func runScale(scenario string, _ time.Duration) error {
	header("Extension — million-client scale harness (open-loop sessions over emulated WAN)",
		"not in the paper's evaluation: tens of thousands of concurrent open-loop sessions with coordinated-omission-safe latency, seeded WAN link profiles, and scripted partition/heal on one replayable event log; scenarios run at their declared full size regardless of -dur so the schedules stay reproducible")
	names := []string{"steady", "partition"}
	if scenario != "" {
		names = []string{scenario}
	}
	bench, err := cluster.RunScaleMatrix(names, scale.Options{Seed: 1})
	if err != nil {
		return err
	}
	tb := &metrics.Table{Header: []string{"scenario", "dcs", "sessions", "offered/s", "achieved/s", "p50", "p99", "p999", "shed", "converge", "wan evs", "log fp"}}
	for _, r := range bench.Scenarios {
		tb.AddRow(r.Scenario,
			fmt.Sprint(r.DCs),
			fmt.Sprint(r.Sessions),
			fmt.Sprintf("%.0f", r.OfferedPerSec),
			fmt.Sprintf("%.0f", r.AchievedPerSec),
			fmt.Sprintf("%.1fms", r.P50Ms),
			fmt.Sprintf("%.1fms", r.P99Ms),
			fmt.Sprintf("%.1fms", r.P999Ms),
			fmt.Sprint(r.ShedServer+r.ShedClient),
			fmt.Sprintf("%.0fms", r.ConvergeMs),
			fmt.Sprint(r.WANEvents),
			r.EventLogFingerprint)
	}
	fmt.Print(tb.String())
	for _, r := range bench.Scenarios {
		if r.Sessions < 10000 {
			return fmt.Errorf("scenario %s ran %d sessions, below the 10000-session acceptance floor", r.Scenario, r.Sessions)
		}
		if r.Completed == 0 {
			return fmt.Errorf("scenario %s completed no appends", r.Scenario)
		}
	}
	if err := cluster.WriteBench("BENCH_scale.json", "scale", bench); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_scale.json")
	return nil
}

func runElastic(_ time.Duration) error {
	header("Extension — live elasticity (autoscaled epoch switchover under doubled load)",
		"§6.3 end-to-end, not in the paper's evaluation: mid-run the offered load doubles past the old member set's capacity, the autoscaler fires an online epoch switchover (seal → drain → pad → flip → background migration), and the run must finish with every acknowledged LId unique and readable, the old epoch dense to the boundary, and post-flip append p99 within max(50ms, 10x the pre-flip p99); phase durations are fixed so the capacity model stays reproducible regardless of -dur")
	res, err := cluster.RunElastic(cluster.ElasticOptions{})
	if res.AutoscaleTicks > 0 || err == nil {
		fmt.Printf("maintainers %d -> %d | boundary LId %d | epochs %d | autoscale ticks %d (grew=%v) | migrated %d records (done=%v) | seal retries %d\n",
			res.MaintainersBefore, res.MaintainersAfter, res.BoundaryLId, res.Epochs,
			res.AutoscaleTicks, res.GrowTriggered, res.RecordsMigrated, res.MigrationDone, res.SealRetries)
		fmt.Printf("appends before/during/after %d/%d/%d | p99 %.1f/%.1f/%.1f ms | unique %d dup %d lost %d | p99 bounded %v\n",
			res.AppendsBefore, res.AppendsDuring, res.AppendsAfter,
			res.P99BeforeMs, res.P99DuringMs, res.P99AfterMs,
			res.UniqueLIds, res.DuplicateLIds, res.LostLIds, res.P99Bounded)
	}
	if err != nil {
		return err
	}
	if werr := cluster.WriteBench("BENCH_elastic.json", "elastic", res); werr != nil {
		return werr
	}
	fmt.Println("wrote BENCH_elastic.json")
	return nil
}

func runDurability(dur time.Duration) error {
	header("Extension — durability tier (group-commit fsync windows + quorum durability acks)",
		"not in the paper's evaluation: open-loop appenders against one segment store under per-batch vs group-commit fsync (disk cost injected via the seeded fault controller), then an R=3 replica group with one follower disk slowed 20x under wait-all vs quorum-return acks; bars: group p99 <= 0.5x per-batch p99 at 64 appenders, quorum p99 with the slow disk <= 2x healthy")
	res, err := cluster.RunDurability(cluster.DurabilityOptions{Duration: dur})
	if err != nil {
		return err
	}
	tb := &metrics.Table{Header: []string{"appenders", "policy", "offered/s", "achieved/s", "p50", "p99", "fsyncs", "fsyncs/op"}}
	for _, a := range res.FsyncArms {
		tb.AddRow(fmt.Sprint(a.Appenders), a.Policy,
			fmt.Sprintf("%.0f", a.OfferedPerSec),
			fmt.Sprintf("%.0f", a.AchievedPerSec),
			fmt.Sprintf("%.2fms", a.P50Ms),
			fmt.Sprintf("%.2fms", a.P99Ms),
			fmt.Sprint(a.Fsyncs),
			fmt.Sprintf("%.3f", a.FsyncsPerOp))
	}
	fmt.Print(tb.String())
	fmt.Printf("group/each p99 at max appenders %.2fx (bar: <= 0.5x)\n", res.GroupP99Ratio64)
	qb := &metrics.Table{Header: []string{"arm", "ack", "quorum fanout", "slow member", "achieved/s", "p50", "p99", "durable lag"}}
	for _, a := range res.QuorumArms {
		slow := "-"
		if a.SlowMember >= 0 {
			slow = fmt.Sprintf("m%d (%dx disk)", a.SlowMember, res.SlowFactor)
		}
		qb.AddRow(a.Name, a.Ack, fmt.Sprint(a.QuorumFanout), slow,
			fmt.Sprintf("%.0f", a.AchievedPerSec),
			fmt.Sprintf("%.2fms", a.P50Ms),
			fmt.Sprintf("%.2fms", a.P99Ms),
			fmt.Sprint(a.SlowDurableLag))
	}
	fmt.Print(qb.String())
	fmt.Printf("slow-disk p99 vs healthy: quorum %.2fx (bar: <= 2x) | wait-all %.2fx\n",
		res.QuorumSlowP99Ratio, res.AllAckSlowP99Ratio)
	if err := cluster.WriteBench("BENCH_durability.json", "durability", res); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_durability.json")
	if res.GroupP99Ratio64 > 0.5 {
		return fmt.Errorf("group-commit p99 %.2fx of per-batch baseline at max appenders, above the 0.5x acceptance bar", res.GroupP99Ratio64)
	}
	if res.QuorumSlowP99Ratio > 2 {
		return fmt.Errorf("quorum p99 with a slow disk %.2fx of healthy, above the 2x acceptance bar", res.QuorumSlowP99Ratio)
	}
	return nil
}
