// Quickstart: stand up a three-maintainer FLStore in process, append
// tagged records through the client library, and read them back by
// position and by tag — the log interface of §3.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
)

func main() {
	// A placement is the whole coordination story of FLStore: LIds are
	// dealt round-robin to maintainers in rounds of BatchSize, so every
	// component can compute ownership locally and no sequencer exists.
	placement := flstore.Placement{NumMaintainers: 3, BatchSize: 4}

	// One indexer serves tag lookups.
	indexer := flstore.NewIndexer(nil)
	indexers := []flstore.IndexerAPI{indexer}

	// Three log maintainers, each owning a third of the log.
	var maintainers []*flstore.Maintainer
	var apis []flstore.MaintainerAPI
	for i := 0; i < placement.NumMaintainers; i++ {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:       i,
			Placement:   placement,
			Indexers:    indexers,
			EnforceHead: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		maintainers = append(maintainers, m)
		apis = append(apis, m)
	}

	// Head-of-log gossip lets readers know which prefix is gap-free.
	for i, m := range maintainers {
		peers := make([]flstore.MaintainerAPI, len(apis))
		for j := range apis {
			if j != i {
				peers[j] = apis[j]
			}
		}
		g := flstore.NewGossiper(m, peers, time.Millisecond)
		g.Start()
		defer g.Stop()
	}

	client, err := flstore.NewDirectClient(placement, apis, indexers)
	if err != nil {
		log.Fatal(err)
	}

	// Append: the record lands at a round-robin-selected maintainer,
	// which post-assigns the next position it owns.
	fmt.Println("appending 12 records...")
	for i := 0; i < 12; i++ {
		lid, err := client.Append(
			[]byte(fmt.Sprintf("event %d payload", i)),
			[]core.Tag{{Key: "severity", Value: fmt.Sprint(i % 3)}},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  record %2d -> LId %2d (maintainer %d)\n", i, lid, placement.Owner(lid))
	}

	// The head of the log: everything at or below it is gap-free.
	head, err := client.HeadExact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhead of log: %d\n", head)

	// Read by position.
	rec, err := client.ReadLId(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReadLId(5): %q\n", rec.Body)

	// Read by tag through the indexer: the two most recent readable
	// records with severity 2.
	recs, err := client.Read(core.Rule{
		TagKey: "severity", TagCmp: core.CmpEQ, TagValue: "2",
		MostRecent: true, Limit: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most recent two severity=2 records:")
	for _, r := range recs {
		fmt.Printf("  LId %2d: %q\n", r.LId, r.Body)
	}

	// Records are immutable: altering an effect means appending a new
	// record, never rewriting an old one.
	lid, _ := client.Append([]byte("event 2 correction"), []core.Tag{{Key: "corrects", Value: "2"}})
	fmt.Printf("\ncorrection appended at LId %d (original untouched)\n", lid)
}
