// Hyksos example: the paper's Figure 2 walkthrough on two live
// datacenters — a causally consistent key-value store with get
// transactions, built entirely on the Chariots shared log (§4.1).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/hyksos"
)

func newDC(self core.DCID) *chariots.Datacenter {
	dc, err := chariots.New(chariots.Config{
		Self:           self,
		NumDCs:         2,
		Maintainers:    2,
		Indexers:       1,
		FlushThreshold: 1,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dc
}

func main() {
	// Two datacenters, A and B, connected by a 20 ms (one-way) WAN.
	dcA, dcB := newDC(0), newDC(1)
	dcA.Start()
	dcB.Start()
	defer dcA.Stop()
	defer dcB.Stop()

	const wan = 20 * time.Millisecond
	link := func(rxs []chariots.ReceiverAPI) []chariots.ReceiverAPI {
		out := make([]chariots.ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			out[i] = chariots.NewLatencyLink(rx, wan)
		}
		return out
	}
	dcA.ConnectTo(1, link(dcB.Receivers()))
	dcB.ConnectTo(0, link(dcA.Receivers()))

	storeA := hyksos.NewStore(dcA)
	storeB := hyksos.NewStore(dcB)
	alice := storeA.NewSession() // client at datacenter A
	bob := storeB.NewSession()   // client at datacenter B

	// Time 1 (Figure 2): concurrent writes — the two puts to x are not
	// causally related, so A and B may order them differently.
	fmt.Println("time 1: concurrent puts at both datacenters")
	must(alice.Put("y", "20"))
	must(alice.Put("x", "30"))
	must(bob.Put("x", "10"))
	must(bob.Put("z", "40"))

	// Local reads before propagation reflect only local state.
	xA, _ := alice.Get("x")
	xB, _ := bob.Get("x")
	fmt.Printf("  before propagation: x at A = %s, x at B = %s (sites may disagree on concurrent writes)\n", xA, xB)

	// Wait for the four records to replicate both ways.
	waitApplied(dcA, 1, 2)
	waitApplied(dcB, 0, 2)
	xA, _ = alice.Get("x")
	xB, _ = bob.Get("x")
	fmt.Printf("  after propagation:  x at A = %s, x at B = %s\n", xA, xB)

	// Time 2: one more write on each side.
	fmt.Println("time 2: Put(y,50) at A and Put(z,60) at B")
	must(alice.Put("y", "50"))
	must(bob.Put("z", "60"))

	// A get transaction pins the head of the log and reads a consistent
	// snapshot: a put appended after the pin is invisible even though it
	// is newer (the paper's y=50 case).
	snap, err := alice.GetTxn("x", "y", "z")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  get_txn at A (snapshot at LId %d): %v\n", snap.AtLId, snap.Values)

	// Time 3: full propagation; both sides converge on y and z.
	waitApplied(dcA, 1, 3)
	waitApplied(dcB, 0, 3)
	snapA, _ := storeA.NewSession().GetTxn("x", "y", "z")
	snapB, _ := storeB.NewSession().GetTxn("x", "y", "z")
	fmt.Println("time 3: after full propagation")
	fmt.Printf("  snapshot at A: %v\n", snapA.Values)
	fmt.Printf("  snapshot at B: %v\n", snapB.Values)

	// Causal hand-off: Bob reads y=50 (which happened-after Alice's
	// writes) and then writes y=51; every datacenter must order 51
	// after 50.
	bob2 := storeB.NewSession()
	y, _ := bob2.Get("y")
	must(bob2.Put("y", incr(y)))
	alice2 := storeA.NewSession()
	if !alice2.WaitFor(bob2.Context(), 5*time.Second) {
		log.Fatal("causal hand-off never arrived at A")
	}
	y2, _ := alice2.Get("y")
	fmt.Printf("causal chain: B read y=%s, wrote y=%s; A now reads y=%s\n", y, incr(y), y2)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func incr(v string) string {
	var n int
	fmt.Sscanf(v, "%d", &n)
	return fmt.Sprint(n + 1)
}

// waitApplied blocks until dc has applied host's records through toid.
func waitApplied(dc *chariots.Datacenter, host core.DCID, toid uint64) {
	if !dc.WaitForTOId(host, toid, 10*time.Second) {
		log.Fatalf("DC%d never applied %s's record %d", dc.Self(), host, toid)
	}
}
