// Stream-processing example: a Photon-style continuous join of two event
// streams produced at different datacenters (§4.2). Clicks arrive at DC0,
// search queries at DC1; the joiner runs at DC0 over the replicated log
// and pairs each click with its query exactly once — the log supplies
// persistence, replication, ordering, and exactly-once semantics.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/streamproc"
)

func newDC(self core.DCID) *chariots.Datacenter {
	dc, err := chariots.New(chariots.Config{
		Self:           self,
		NumDCs:         2,
		Maintainers:    3,
		Indexers:       1,
		FlushThreshold: 8,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  8,
		SendInterval:   200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dc
}

func main() {
	clicksDC, queriesDC := newDC(0), newDC(1)
	clicksDC.Start()
	queriesDC.Start()
	defer clicksDC.Stop()
	defer queriesDC.Stop()
	clicksDC.ConnectTo(1, queriesDC.Receivers())
	queriesDC.ConnectTo(0, clicksDC.Receivers())

	// The join pairs click and query events sharing a session id.
	var mu sync.Mutex
	joined := map[string]string{}
	join := streamproc.NewJoin("clicks", "queries",
		func(ev streamproc.Event) string { return string(ev.Payload[:8]) }, // session id prefix
		func(key string, click, query streamproc.Event) {
			mu.Lock()
			joined[key] = fmt.Sprintf("click@%s + query@%s", click.Origin, query.Origin)
			mu.Unlock()
		})

	// Readers partition the log across maintainers — no central
	// dispatcher (each reader consumes one maintainer's records).
	group := streamproc.NewReaderGroup("ad-join", clicksDC, join.Handler(), "clicks", "queries")
	group.Start()
	defer group.Stop()

	// Publishers at their home datacenters.
	clicks := streamproc.NewPublisher(clicksDC)
	queries := streamproc.NewPublisher(queriesDC)
	const sessions = 10
	fmt.Printf("publishing %d click/query pairs at two datacenters...\n", sessions)
	for i := 0; i < sessions; i++ {
		session := fmt.Sprintf("sess-%03d", i)
		clicks.Publish("clicks", []byte(session+" clicked ad #42"))
		queries.Publish("queries", []byte(session+" searched 'chariots'"))
	}

	// Wait for every pair to join.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if join.Matched.Value() >= sessions {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("only %d/%d pairs joined", join.Matched.Value(), sessions)
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	keys := make([]string, 0, len(joined))
	for k := range joined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s: %s\n", k, joined[k])
	}
	mu.Unlock()
	fmt.Printf("joined %d pairs exactly once (unmatched buffers: %d left, %d right)\n",
		join.Matched.Value(), join.PendingLeft(), join.PendingRight())

	// Exactly-once across restart: a second group instance recovers its
	// checkpoints from the log itself and reprocesses nothing.
	clicksDC.Quiesce(50*time.Millisecond, 5*time.Second)
	var reprocessed int
	group2 := streamproc.NewReaderGroup("ad-join", clicksDC, func(ev streamproc.Event) error {
		reprocessed++
		return nil
	}, "clicks", "queries")
	if err := group2.Recover(); err != nil {
		log.Fatal(err)
	}
	group2.Start()
	time.Sleep(100 * time.Millisecond)
	group2.Stop()
	fmt.Printf("after simulated restart + checkpoint recovery: %d events reprocessed (want 0)\n", reprocessed)
}
