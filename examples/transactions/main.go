// Message Futures example (§4.3): strongly consistent bank transfers on
// two geo-replicated datacenters, with the causally ordered shared log as
// the only coordination medium. Conflicting concurrent transactions are
// detected through the log's history exchange; commit latency is governed
// by the WAN round trip, not by extra coordination messages.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/msgfutures"
)

func newDC(self core.DCID) *chariots.Datacenter {
	dc, err := chariots.New(chariots.Config{
		Self:           self,
		NumDCs:         2,
		Maintainers:    2,
		FlushThreshold: 1,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dc
}

func main() {
	dcA, dcB := newDC(0), newDC(1)
	dcA.Start()
	dcB.Start()
	defer dcA.Stop()
	defer dcB.Stop()

	const wan = 15 * time.Millisecond
	link := func(rxs []chariots.ReceiverAPI) []chariots.ReceiverAPI {
		out := make([]chariots.ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			out[i] = chariots.NewLatencyLink(rx, wan)
		}
		return out
	}
	dcA.ConnectTo(1, link(dcB.Receivers()))
	dcB.ConnectTo(0, link(dcA.Receivers()))

	tmA := msgfutures.NewManager(dcA)
	tmB := msgfutures.NewManager(dcB)
	defer tmA.Stop()
	defer tmB.Stop()

	// Seed two accounts from A.
	seed := tmA.Begin()
	seed.Write("alice", "100")
	seed.Write("bob", "100")
	start := time.Now()
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed committed in %v (WAN one-way %v → commit needs ≥ 2×%v)\n",
		time.Since(start).Round(time.Millisecond), wan, wan)

	waitValue(tmB, "alice", "100")

	// A successful transfer at A.
	transfer := tmA.Begin()
	a, _ := transfer.Read("alice")
	b, _ := transfer.Read("bob")
	transfer.Write("alice", sub(a, 30))
	transfer.Write("bob", add(b, 30))
	start = time.Now()
	if err := transfer.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer A→: alice-30, bob+30 committed in %v\n", time.Since(start).Round(time.Millisecond))
	waitValue(tmB, "bob", "130")
	fmt.Println("replica B agrees: alice=70 bob=130")

	// Concurrent conflicting withdrawals at both sites: both touch
	// alice; the deterministic rule commits exactly one, at both sites.
	fmt.Println("\nconcurrent conflicting withdrawals at A and B:")
	txA := tmA.Begin()
	v, _ := txA.Read("alice")
	txA.Write("alice", sub(v, 50))
	txB := tmB.Begin()
	w, _ := txB.Read("alice")
	txB.Write("alice", sub(w, 70))

	errCh := make(chan error, 2)
	go func() { errCh <- txA.Commit() }()
	go func() { errCh <- txB.Commit() }()
	res1, res2 := <-errCh, <-errCh
	for _, err := range []error{res1, res2} {
		switch {
		case err == nil:
			fmt.Println("  one withdrawal committed")
		case errors.Is(err, msgfutures.ErrAborted):
			fmt.Printf("  one withdrawal aborted: %v\n", err)
		default:
			log.Fatal(err)
		}
	}

	// Both replicas converge to the same surviving balance.
	deadline := time.Now().Add(10 * time.Second)
	for {
		va, _ := tmA.ReadCommitted("alice")
		vb, _ := tmB.ReadCommitted("alice")
		if va == vb && (va == "20" || va == "0") {
			fmt.Printf("replicas agree: alice=%s at both datacenters\n", va)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("replicas disagree: A=%q B=%q", va, vb)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("outcomes at A: %d committed, %d aborted\n", tmA.Committed.Value(), tmA.Aborted.Value())
}

func waitValue(m *msgfutures.Manager, key, want string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := m.ReadCommitted(key); ok && v == want {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("%s never became %s", key, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func add(v string, d int) string { return num(v, d) }
func sub(v string, d int) string { return num(v, -d) }

func num(v string, d int) string {
	var n int
	fmt.Sscanf(v, "%d", &n)
	return fmt.Sprint(n + d)
}
