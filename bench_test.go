// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7), plus the ablations DESIGN.md calls out. Each benchmark
// reports the experiment's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers; `go run ./cmd/repro` prints the same
// experiments as full tables with the paper's values alongside.
//
// The measurement windows here are kept short (the benchmarks re-run per
// b.N iteration); EXPERIMENTS.md records the full-length runs.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
)

const benchWindow = 500 * time.Millisecond

// BenchmarkFig7SingleMaintainerLoadCurve reproduces Figure 7: achieved
// throughput of one maintainer as the offered target sweeps past its
// capacity — rise, peak, slight decline.
func BenchmarkFig7SingleMaintainerLoadCurve(b *testing.B) {
	for _, target := range []float64{50_000, 150_000, 300_000} {
		b.Run(fmt.Sprintf("target=%.0fK", target/1000), func(b *testing.B) {
			var achieved float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunFLStore(cluster.FLStoreOptions{
					Profile:         cluster.PrivateCloud(),
					Maintainers:     1,
					TargetPerClient: target,
					Duration:        benchWindow,
				})
				if err != nil {
					b.Fatal(err)
				}
				achieved = res.AchievedTotal
			}
			b.ReportMetric(achieved, "achieved-appends/s")
			b.ReportMetric(target, "offered-appends/s")
		})
	}
}

// BenchmarkFig8FLStoreScaling reproduces Figure 8: cumulative append
// throughput versus maintainer count for the paper's three series.
func BenchmarkFig8FLStoreScaling(b *testing.B) {
	series := []struct {
		name    string
		profile cluster.Profile
		target  float64
	}{
		{"public-125K", cluster.PublicCloud(), 125_000},
		{"public-250K", cluster.PublicCloud(), 250_000},
		{"private", cluster.PrivateCloud(), 250_000},
	}
	for _, s := range series {
		for _, n := range []int{1, 5, 10} {
			b.Run(fmt.Sprintf("%s/maintainers=%d", s.name, n), func(b *testing.B) {
				var achieved float64
				for i := 0; i < b.N; i++ {
					res, err := cluster.RunFLStore(cluster.FLStoreOptions{
						Profile:         s.profile,
						Maintainers:     n,
						TargetPerClient: s.target,
						Duration:        benchWindow,
					})
					if err != nil {
						b.Fatal(err)
					}
					achieved = res.AchievedTotal
				}
				b.ReportMetric(achieved, "achieved-appends/s")
				b.ReportMetric(achieved/float64(n), "per-maintainer-appends/s")
			})
		}
	}
}

// benchPipeline runs one Tables-2–5 configuration and reports the client
// (end-to-end) and bottleneck stage throughputs.
func benchPipeline(b *testing.B, clients, batchers, filters, queues int) {
	b.Helper()
	var clientTotal, bottleneck float64
	var stage string
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunPipeline(cluster.PipelineOptions{
			Profile: cluster.PrivateCloud(),
			Clients: clients, Batchers: batchers, Filters: filters,
			Queues: queues, Maintainers: queues,
			Duration: benchWindow,
		})
		if err != nil {
			b.Fatal(err)
		}
		totals := res.StageTotals()
		clientTotal = totals["Client"]
		stage = res.Bottleneck
		bottleneck = totals[stage]
	}
	b.ReportMetric(clientTotal, "client-appends/s")
	b.ReportMetric(bottleneck, "bottleneck-appends/s")
	b.Logf("bottleneck stage: %s", stage)
}

// BenchmarkTable2PipelineBaseline: one machine per stage — every stage
// runs at roughly the same ≈125K records/s.
func BenchmarkTable2PipelineBaseline(b *testing.B) { benchPipeline(b, 1, 1, 1, 1) }

// BenchmarkTable3TwoClients: a second client halves per-client throughput;
// the batcher stage becomes the bottleneck.
func BenchmarkTable3TwoClients(b *testing.B) { benchPipeline(b, 2, 1, 1, 1) }

// BenchmarkTable4TwoBatchers: a second batcher moves the bottleneck to the
// filter stage.
func BenchmarkTable4TwoBatchers(b *testing.B) { benchPipeline(b, 2, 2, 1, 1) }

// BenchmarkTable5TwoOfEachStage: two machines per stage double the whole
// pipeline.
func BenchmarkTable5TwoOfEachStage(b *testing.B) { benchPipeline(b, 2, 2, 2, 2) }

// BenchmarkFig9Timeseries reproduces Figure 9's drain study: a fixed
// record count flows through the Table-4 configuration; the reported
// metrics are the queue stage's steady rate and its post-spike rate after
// the batchers stop transmitting.
func BenchmarkFig9Timeseries(b *testing.B) {
	var steady, spike float64
	for i := 0; i < b.N; i++ {
		profile := cluster.PrivateCloud()
		res, err := cluster.RunPipeline(cluster.PipelineOptions{
			Profile: profile,
			Clients: 2, Batchers: 2, Filters: 1, Queues: 1, Maintainers: 1,
			Records:      uint64(200_000 / profile.ScaleFactor()),
			SampleWindow: 100 * time.Millisecond,
			ChannelDepth: 1 << 21,
		})
		if err != nil {
			b.Fatal(err)
		}
		samples := res.Samples["Queue"]
		batcher := res.Samples["Batcher 1"]
		// Steady phase: while the batcher is active; spike: after.
		var batcherEnd time.Duration
		for _, s := range batcher {
			if s.Count > 0 {
				batcherEnd = s.Elapsed
			}
		}
		var steadySum, spikeMax float64
		var steadyN int
		for _, s := range samples {
			if s.Elapsed <= batcherEnd {
				steadySum += s.Rate
				steadyN++
			} else if s.Rate > spikeMax {
				spikeMax = s.Rate
			}
		}
		if steadyN > 0 {
			steady = steadySum / float64(steadyN)
		}
		spike = spikeMax
	}
	b.ReportMetric(steady, "queue-steady-appends/s")
	b.ReportMetric(spike, "queue-after-spike-appends/s")
}

// BenchmarkAblationSequencerVsFLStore: the motivating comparison — a
// CORFU-style pre-assignment sequencer plateaus while FLStore scales.
func BenchmarkAblationSequencerVsFLStore(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			var seq, fl float64
			for i := 0; i < b.N; i++ {
				points, err := cluster.RunSequencerVsFLStore(cluster.PrivateCloud(),
					[]int{n}, 200_000, benchWindow)
				if err != nil {
					b.Fatal(err)
				}
				seq = points[0].Sequencer
				fl = points[0].FLStore
			}
			b.ReportMetric(seq, "sequencer-appends/s")
			b.ReportMetric(fl, "flstore-appends/s")
		})
	}
}

// BenchmarkAblationBatchSize: FLStore's placement round size does not gate
// append bandwidth (§5.2 design choice).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []uint64{100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var achieved float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunFLStoreWithBatch(cluster.FLStoreOptions{
					Profile:         cluster.PrivateCloud(),
					Maintainers:     4,
					TargetPerClient: 125_000,
					Duration:        benchWindow,
				}, batch)
				if err != nil {
					b.Fatal(err)
				}
				achieved = res.AchievedTotal
			}
			b.ReportMetric(achieved, "achieved-appends/s")
		})
	}
}

// BenchmarkAblationGossipInterval: gossip frequency trades head-of-log
// freshness (read latency) without touching append throughput (§5.4).
func BenchmarkAblationGossipInterval(b *testing.B) {
	for _, interval := range []time.Duration{time.Millisecond, 20 * time.Millisecond} {
		b.Run(fmt.Sprintf("gossip=%s", interval), func(b *testing.B) {
			var lag uint64
			var thr float64
			for i := 0; i < b.N; i++ {
				var err error
				lag, thr, err = cluster.RunGossipAblation(cluster.PrivateCloud(), 4, 100_000, interval, benchWindow)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(lag), "head-lag-records")
			b.ReportMetric(thr, "achieved-appends/s")
		})
	}
}

// BenchmarkAblationTokenCarry: deferred records carried with the token
// versus parked at one queue (§6.2 trade-off).
func BenchmarkAblationTokenCarry(b *testing.B) {
	for _, carry := range []bool{true, false} {
		b.Run(fmt.Sprintf("carry=%v", carry), func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				var err error
				lat, err = cluster.RunTokenCarryAblation(carry, 200*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(lat.Microseconds()), "dependent-apply-us")
		})
	}
}

// BenchmarkAblationBatcherFlush: the batcher flush threshold's effect on
// end-to-end throughput (§6.2 batching).
func BenchmarkAblationBatcherFlush(b *testing.B) {
	for _, thresh := range []int{1, 512} {
		b.Run(fmt.Sprintf("flush=%d", thresh), func(b *testing.B) {
			var clientTotal float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunPipeline(cluster.PipelineOptions{
					Profile: cluster.PrivateCloud(),
					Clients: 1, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
					Duration:       benchWindow,
					FlushThreshold: thresh,
				})
				if err != nil {
					b.Fatal(err)
				}
				clientTotal = res.StageTotals()["Client"]
			}
			b.ReportMetric(clientTotal, "client-appends/s")
		})
	}
}
